// Time-based transient store (paper §4.1, Fig. 7).
//
// Timing data (e.g. GPS positions) is only meaningful inside stream windows,
// so it never enters the persistent store. Each (node, stream) pair owns a
// TransientStore: a time-ordered sequence of *transient slices*, one per
// batch, appended at the new end by the Injector and freed at the old end by
// the garbage collector once no registered window can reach them. A bounded
// memory budget mimics the paper's fixed-size ring buffer: exceeding it
// triggers an immediate GC of expired slices.

#ifndef SRC_STREAM_TRANSIENT_STORE_H_
#define SRC_STREAM_TRANSIENT_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/rdf/triple.h"

namespace wukongs {

class TransientStore {
 public:
  // Invoked after any eviction path reclaims slices, with the minimum batch
  // still live; delta caches retire contributions below it (DESIGN.md §5.9).
  // Called outside the store's lock, so the listener may take its own locks.
  using EvictionListener = std::function<void(BatchSeq min_live_seq)>;

  // `memory_budget_bytes` = 0 means unbounded.
  explicit TransientStore(size_t memory_budget_bytes = 0);

  // Appends one batch's timing edges as a new slice. Batches must arrive in
  // order (streams are in-order per §4.3). Returns false if the budget is
  // exhausted even after GC — callers treat that as back-pressure.
  // The edge-pair form is the dispatcher's path: it receives exactly the
  // directions owned by this node. Index entries ([0|pid|dir] -> vid) are
  // added for newly seen keys so window patterns can seed from predicates.
  bool AppendSlice(BatchSeq seq, const std::vector<std::pair<Key, VertexId>>& edges);
  // Convenience: single-node form indexing both directions of each tuple.
  bool AppendSlice(BatchSeq seq, const StreamTupleVec& timing_tuples);

  // Load-shedding append: stores the largest *prefix* of `edges` that fits
  // the remaining budget (after forced GC) and returns how many edges were
  // kept. Shedding only ever drops a batch suffix, so surviving data stays a
  // time-ordered prefix and Stable_VTS semantics are preserved; the slice is
  // created even when nothing fits (an empty slice keeps batches dense).
  size_t AppendSlicePrefix(BatchSeq seq,
                           const std::vector<std::pair<Key, VertexId>>& edges);

  // Migration merge (DESIGN.md §5.10): folds a moving shard's timing edges
  // for slice `seq` into this (target) store — used by dual-apply and
  // history replay. A slice this node never appended (a node added after the
  // batch was delivered) is materialized in sequence order; a slice below
  // the GC horizon returns false (a no-op — no live window reaches it).
  // Merged bytes may transiently overshoot the budget — the next
  // budget-triggered GC reclaims as usual.
  bool MergeSlice(BatchSeq seq, const std::vector<std::pair<Key, VertexId>>& edges);

  // Removes every slice's timing edges for vertices matched by `in_shard`
  // (DESIGN.md §5.10): the stale copy a former owner kept after the shard
  // moved away. Normal keys of matched vertices are dropped whole and their
  // entries scrubbed from the per-slice index lists, so replay and dual-apply
  // rebuild the shard's timing data exactly once. Returns edges removed.
  size_t PurgeShard(const std::function<bool(VertexId)>& in_shard);

  // Appends the neighbors of `key` within batch `seq` to `out`.
  void GetNeighbors(BatchSeq seq, Key key, std::vector<VertexId>* out) const;
  size_t EdgeCount(BatchSeq seq, Key key) const;

  // Registers the eviction listener (replacing any previous one). Every
  // reclaim path — explicit, budget-triggered, and periodic — notifies it.
  void SetEvictionListener(EvictionListener listener);

  // Frees every slice with seq < `min_live_seq`. Returns slices freed.
  size_t EvictBefore(BatchSeq min_live_seq);
  // Marks the horizon the GC may not cross (earliest batch any registered
  // window still needs); periodic GC uses it.
  void SetGcHorizon(BatchSeq min_live_seq);
  size_t RunGc();

  size_t SliceCount() const;
  size_t MemoryBytes() const;
  BatchSeq OldestSeq() const;  // kNoBatch when empty.
  BatchSeq NewestSeq() const;  // kNoBatch when empty.

  // Cumulative GC reclaim over the store lifetime (every eviction path —
  // explicit, budget-triggered, and periodic — funnels through the same
  // internal helper). Scraped into the metrics registry.
  struct GcStats {
    uint64_t slices_reclaimed = 0;
    uint64_t bytes_reclaimed = 0;
  };
  GcStats gc_stats() const;

 private:
  struct Slice {
    BatchSeq seq = 0;
    std::unordered_map<Key, std::vector<VertexId>, KeyHash> edges;
    size_t bytes = 0;
  };

  const Slice* FindSlice(BatchSeq seq) const;
  size_t EvictBeforeLocked(BatchSeq min_live_seq);
  static Slice BuildSlice(BatchSeq seq,
                          const std::vector<std::pair<Key, VertexId>>& edges,
                          size_t count);

  const size_t memory_budget_bytes_;
  mutable std::mutex mu_;
  std::deque<Slice> slices_;
  size_t total_bytes_ = 0;
  BatchSeq gc_horizon_ = 0;
  GcStats gc_stats_;            // Guarded by mu_.
  EvictionListener listener_;   // Guarded by mu_; invoked after unlock.
};

}  // namespace wukongs

#endif  // SRC_STREAM_TRANSIENT_STORE_H_
