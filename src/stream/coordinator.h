// Coordinator: stable vector timestamps, SN-VTS plans, bounded snapshot
// scalarization (paper §4.3, Figs. 10-11).
//
// Each node's Injector reports batch completions, building Local_VTS[node].
// The Coordinator derives Stable_VTS (element-wise min) — the trigger
// condition for continuous queries — and maintains the SN-VTS plan: a
// published sequence of mappings "snapshot number SN covers stream batches up
// to VTS target". Injectors tag every persistent append with the SN of its
// batch, so all data of one SN is consecutive in each value, and one-shot
// queries read at Stable_SN (the largest SN whose target every node has
// reached). Keeping only `reserved_snapshots` SNs live bounds per-key
// metadata; the collapse floor advances as Stable_SN does.

#ifndef SRC_STREAM_COORDINATOR_H_
#define SRC_STREAM_COORDINATOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/ids.h"
#include "src/stream/batch.h"
#include "src/stream/vts.h"

namespace wukongs {

class Coordinator {
 public:
  // `batches_per_sn`: how many batches of every stream one SN covers — the
  // plan "interval" trading staleness for injection flexibility (§4.3).
  // `max_plan_extensions`: how far the announced plan frontier may run ahead
  // of Stable_SN before CanPlanSnFor tells the injector to stall (0 =
  // unbounded, the pre-overload behavior).
  Coordinator(uint32_t node_count, size_t reserved_snapshots = 2,
              uint64_t batches_per_sn = 1, size_t max_plan_extensions = 0);

  // Declares a stream; all VTS grow to cover it. Adding streams mid-run only
  // affects future plans (the paper's "dynamic streams" flexibility).
  void RegisterStream(StreamId stream);
  size_t stream_count() const;

  // Injector report: `node` finished injecting batch `seq` of `stream`.
  // Batches complete in order per (node, stream).
  void ReportInjected(NodeId node, StreamId stream, BatchSeq seq);

  // Membership view (fault tolerance, §5): a node marked inactive (crashed /
  // quarantined) is excluded from Stable_VTS and Stable_SN, so surviving
  // nodes keep triggering windows — degraded, not stalled. Reactivate only
  // after the node's Local_VTS has caught back up, or Stable_VTS regresses.
  void SetNodeActive(NodeId node, bool active);
  bool node_active(NodeId node) const;
  // Recovery: forget a crashed node's injection progress so replay can
  // re-report its batches from the beginning.
  void ResetNode(NodeId node);

  // Elastic membership (online reconfiguration, DESIGN.md §5.10): admits one
  // more node, active, with `seed` as its Local_VTS. The caller seeds at the
  // cluster's delivered frontier so Stable_VTS does not regress and the new
  // node's next in-order report satisfies the per-stream sequencing check.
  // Returns the new node id.
  NodeId AddNode(const VectorTimestamp& seed);

  VectorTimestamp LocalVts(NodeId node) const;
  VectorTimestamp StableVts() const;

  // Trigger delta: the batches of `stream` that became stable since
  // `last_seen` (the Stable_VTS entry observed at the previous trigger;
  // kNoBatch = never observed). Empty when Stable_VTS has not advanced.
  // Continuous engines use this to size the per-trigger delta — everything
  // at or below `last_seen` is eligible for delta-cache reuse (§5.9).
  BatchRange StableAdvanceSince(StreamId stream, BatchSeq last_seen) const;

  // Largest SN whose plan target is covered by Stable_VTS; kBaseSnapshot (0)
  // until the first plan completes.
  SnapshotNum StableSn() const;
  SnapshotNum LocalSn(NodeId node) const;

  // SN that batch `seq` of `stream` belongs to, per the announced plans.
  // Extends the plan when injection runs ahead of announcements (the real
  // system would stall the injector; the count of such extensions is
  // observable via plan_extensions()).
  SnapshotNum PlanSnFor(StreamId stream, BatchSeq seq);

  // Credit gate for the injector: false when assigning an SN to `seq` would
  // push the plan frontier more than `max_plan_extensions` SNs past
  // Stable_SN. The caller parks the batch in its pending queue instead of
  // calling PlanSnFor (which would extend unboundedly). Always true when the
  // cap is 0.
  bool CanPlanSnFor(StreamId stream, BatchSeq seq) const;

  // Snapshots <= floor can fold into base prefixes: Stable_SN minus the
  // reserved window. Callers forward this to GStore::CollapseBelow.
  SnapshotNum CollapseFloor() const;

  size_t reserved_snapshots() const { return reserved_snapshots_; }
  size_t plan_count() const;
  size_t plan_extensions() const;

 private:
  struct Plan {
    SnapshotNum sn;
    // target[s] = last batch (inclusive) of stream s in this snapshot.
    std::vector<BatchSeq> target;
  };

  SnapshotNum MaxSnCoveredLocked(const VectorTimestamp& vts) const;
  VectorTimestamp StableVtsLocked() const;
  void ExtendPlanLocked();

  uint32_t node_count_;  // Grows via AddNode; guarded by mu_ after init.
  const size_t reserved_snapshots_;
  const uint64_t batches_per_sn_;
  const size_t max_plan_extensions_;

  mutable std::mutex mu_;
  size_t stream_count_ = 0;
  std::vector<VectorTimestamp> local_vts_;  // Per node.
  std::vector<bool> active_;                // Per node; all true initially.
  std::vector<Plan> plans_;                 // Ascending SN, SN starts at 1.
  size_t plan_extensions_ = 0;
};

}  // namespace wukongs

#endif  // SRC_STREAM_COORDINATOR_H_
