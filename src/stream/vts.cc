#include "src/stream/vts.h"

#include <algorithm>
#include <sstream>

namespace wukongs {
namespace {

// kNoBatch sorts below every real sequence number.
int64_t Rank(BatchSeq seq) {
  return seq == kNoBatch ? -1 : static_cast<int64_t>(seq);
}

}  // namespace

bool VectorTimestamp::Covers(const VectorTimestamp& other) const {
  size_t n = std::max(seqs_.size(), other.seqs_.size());
  for (size_t s = 0; s < n; ++s) {
    if (Rank(Get(static_cast<StreamId>(s))) <
        Rank(other.Get(static_cast<StreamId>(s)))) {
      return false;
    }
  }
  return true;
}

VectorTimestamp VectorTimestamp::Min(const VectorTimestamp& a,
                                     const VectorTimestamp& b) {
  size_t n = std::max(a.size(), b.size());
  VectorTimestamp out(n);
  for (size_t s = 0; s < n; ++s) {
    BatchSeq sa = a.Get(static_cast<StreamId>(s));
    BatchSeq sb = b.Get(static_cast<StreamId>(s));
    out.Set(static_cast<StreamId>(s), Rank(sa) < Rank(sb) ? sa : sb);
  }
  return out;
}

std::string VectorTimestamp::DebugString() const {
  std::ostringstream os;
  os << "[";
  for (size_t s = 0; s < seqs_.size(); ++s) {
    if (s > 0) {
      os << ",";
    }
    if (seqs_[s] == kNoBatch) {
      os << "-";
    } else {
      os << "S" << s << "=" << seqs_[s];
    }
  }
  os << "]";
  return os.str();
}

}  // namespace wukongs
