// Vector timestamps over streams (paper §4.3, Fig. 10).
//
// A vector timestamp (VTS) holds, per stream, the highest batch sequence
// number that has been fully inserted. Each node keeps a Local_VTS; the
// Coordinator derives Stable_VTS as the element-wise minimum over nodes, and
// continuous queries trigger only when their windows' final batches are
// covered by Stable_VTS — this is what makes a batch visible only after it
// has been inserted on *all* nodes.

#ifndef SRC_STREAM_VTS_H_
#define SRC_STREAM_VTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace wukongs {

// Batch sequence numbers start at 0; kNoBatch means "nothing injected yet".
inline constexpr BatchSeq kNoBatch = ~BatchSeq{0};

class VectorTimestamp {
 public:
  VectorTimestamp() = default;
  explicit VectorTimestamp(size_t streams) : seqs_(streams, kNoBatch) {}

  size_t size() const { return seqs_.size(); }
  void Resize(size_t streams) { seqs_.resize(streams, kNoBatch); }

  BatchSeq Get(StreamId s) const {
    return s < seqs_.size() ? seqs_[s] : kNoBatch;
  }
  void Set(StreamId s, BatchSeq seq) {
    if (s >= seqs_.size()) {
      seqs_.resize(s + 1, kNoBatch);
    }
    seqs_[s] = seq;
  }

  // True if this VTS covers `other`: every stream is at least as advanced.
  bool Covers(const VectorTimestamp& other) const;

  // Element-wise minimum (used to build Stable_VTS from Local_VTS's).
  static VectorTimestamp Min(const VectorTimestamp& a, const VectorTimestamp& b);

  std::string DebugString() const;

  friend bool operator==(const VectorTimestamp&, const VectorTimestamp&) = default;

 private:
  std::vector<BatchSeq> seqs_;
};

}  // namespace wukongs

#endif  // SRC_STREAM_VTS_H_
