#include "src/stream/transient_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/test_hooks.h"
#include "src/stream/vts.h"

namespace wukongs {
namespace {

// Fires the eviction listener outside the store lock (listeners take the
// delta-cache lock; keeping the orders disjoint avoids inversion under TSan).
void NotifyEviction(const TransientStore::EvictionListener& listener,
                    size_t freed, BatchSeq min_live_seq) {
  if (freed == 0 || !listener) {
    return;
  }
  if (test_hooks::skip_delta_invalidation.load(std::memory_order_relaxed)) {
    return;  // Planted fault: GC "forgets" to tell the delta caches.
  }
  listener(min_live_seq);
}

}  // namespace

TransientStore::TransientStore(size_t memory_budget_bytes)
    : memory_budget_bytes_(memory_budget_bytes) {}

bool TransientStore::AppendSlice(BatchSeq seq, const StreamTupleVec& timing_tuples) {
  std::vector<std::pair<Key, VertexId>> edges;
  edges.reserve(timing_tuples.size() * 2);
  for (const StreamTuple& t : timing_tuples) {
    assert(t.kind == TupleKind::kTiming);
    // Timing edges are indexed both ways, like persistent edges, so window
    // patterns can explore in either direction.
    edges.emplace_back(Key(t.triple.subject, t.triple.predicate, Dir::kOut),
                       t.triple.object);
    edges.emplace_back(Key(t.triple.object, t.triple.predicate, Dir::kIn),
                       t.triple.subject);
  }
  return AppendSlice(seq, edges);
}

TransientStore::Slice TransientStore::BuildSlice(
    BatchSeq seq, const std::vector<std::pair<Key, VertexId>>& edges,
    size_t count) {
  Slice slice;
  slice.seq = seq;
  for (size_t i = 0; i < count; ++i) {
    const auto& [key, value] = edges[i];
    auto [it, created] = slice.edges.try_emplace(key);
    it->second.push_back(value);
    if (created && !key.is_index()) {
      // Seed the per-slice index vertex on first sight of a key.
      slice.edges[Key(kIndexVertex, key.pid(), key.dir())].push_back(key.vid());
    }
  }
  for (const auto& [key, value_list] : slice.edges) {
    (void)key;
    slice.bytes += sizeof(Key) + 48 + value_list.capacity() * sizeof(VertexId);
  }
  return slice;
}

bool TransientStore::AppendSlice(BatchSeq seq,
                                 const std::vector<std::pair<Key, VertexId>>& edges) {
  size_t freed = 0;
  BatchSeq min_live = 0;
  EvictionListener listener;
  bool accepted = true;
  {
    std::lock_guard lock(mu_);
    assert(slices_.empty() || slices_.back().seq < seq);

    Slice slice = BuildSlice(seq, edges, edges.size());

    if (memory_budget_bytes_ != 0 &&
        total_bytes_ + slice.bytes > memory_budget_bytes_) {
      // Ring buffer full: reclaim expired slices right now (paper: GC is
      // "explicitly invoked when the ring buffer is full").
      freed = EvictBeforeLocked(gc_horizon_);
      min_live = gc_horizon_;
      listener = listener_;
      accepted = total_bytes_ + slice.bytes <= memory_budget_bytes_;
    }
    if (accepted) {
      total_bytes_ += slice.bytes;
      slices_.push_back(std::move(slice));
    }
  }
  NotifyEviction(listener, freed, min_live);
  return accepted;
}

size_t TransientStore::AppendSlicePrefix(
    BatchSeq seq, const std::vector<std::pair<Key, VertexId>>& edges) {
  size_t freed = 0;
  BatchSeq min_live = 0;
  EvictionListener listener;
  size_t kept = 0;
  {
    std::lock_guard lock(mu_);
    assert(slices_.empty() || slices_.back().seq < seq);
    freed = EvictBeforeLocked(gc_horizon_);
    min_live = gc_horizon_;
    listener = listener_;

    size_t budget_left =
        memory_budget_bytes_ == 0
            ? SIZE_MAX
            : (memory_budget_bytes_ > total_bytes_
                   ? memory_budget_bytes_ - total_bytes_
                   : 0);
    // Slice bytes grow monotonically with the edge count, so binary-search the
    // largest fitting prefix (rebuilding the candidate slice per probe keeps
    // the byte accounting identical to AppendSlice's).
    size_t lo = 0;
    size_t hi = edges.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo + 1) / 2;
      if (BuildSlice(seq, edges, mid).bytes <= budget_left) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    // lo == 0 still appends an empty slice, keeping the batch sequence dense
    // for FindSlice.
    Slice slice = BuildSlice(seq, edges, lo);
    total_bytes_ += slice.bytes;
    slices_.push_back(std::move(slice));
    kept = lo;
  }
  NotifyEviction(listener, freed, min_live);
  return kept;
}

bool TransientStore::MergeSlice(
    BatchSeq seq, const std::vector<std::pair<Key, VertexId>>& edges) {
  std::lock_guard lock(mu_);
  Slice* slice = const_cast<Slice*>(FindSlice(seq));
  if (slice == nullptr) {
    if (seq < gc_horizon_) {
      return false;  // Reclaimed: no live window reaches this slice.
    }
    // Never sliced here: the node joined after this batch was delivered.
    // Materialize it in sequence order so replayed timing data is queryable
    // (FindSlice's dense fast path misses, its scan fallback finds it).
    auto it = std::lower_bound(
        slices_.begin(), slices_.end(), seq,
        [](const Slice& s, BatchSeq q) { return s.seq < q; });
    Slice fresh;
    fresh.seq = seq;
    slice = &*slices_.insert(it, std::move(fresh));
  }
  total_bytes_ -= slice->bytes;
  for (const auto& [key, value] : edges) {
    auto [it, created] = slice->edges.try_emplace(key);
    it->second.push_back(value);
    if (created && !key.is_index()) {
      slice->edges[Key(kIndexVertex, key.pid(), key.dir())].push_back(key.vid());
    }
  }
  slice->bytes = 0;
  for (const auto& [key, value_list] : slice->edges) {
    (void)key;
    slice->bytes += sizeof(Key) + 48 + value_list.capacity() * sizeof(VertexId);
  }
  total_bytes_ += slice->bytes;
  return true;
}

size_t TransientStore::PurgeShard(const std::function<bool(VertexId)>& in_shard) {
  std::lock_guard lock(mu_);
  size_t removed = 0;
  for (Slice& slice : slices_) {
    total_bytes_ -= slice.bytes;
    for (auto it = slice.edges.begin(); it != slice.edges.end();) {
      if (!it->first.is_index() && in_shard(it->first.vid())) {
        removed += it->second.size();
        it = slice.edges.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [key, vids] : slice.edges) {
      if (key.is_index()) {
        vids.erase(std::remove_if(vids.begin(), vids.end(), in_shard),
                   vids.end());
      }
    }
    slice.bytes = 0;
    for (const auto& [key, value_list] : slice.edges) {
      (void)key;
      slice.bytes += sizeof(Key) + 48 + value_list.capacity() * sizeof(VertexId);
    }
    total_bytes_ += slice.bytes;
  }
  return removed;
}

const TransientStore::Slice* TransientStore::FindSlice(BatchSeq seq) const {
  if (slices_.empty() || seq < slices_.front().seq || seq > slices_.back().seq) {
    return nullptr;
  }
  size_t idx = static_cast<size_t>(seq - slices_.front().seq);
  // Slices are dense in practice (every batch creates one, possibly empty);
  // fall back to scan if a gap exists.
  if (idx < slices_.size() && slices_[idx].seq == seq) {
    return &slices_[idx];
  }
  for (const Slice& s : slices_) {
    if (s.seq == seq) {
      return &s;
    }
  }
  return nullptr;
}

void TransientStore::GetNeighbors(BatchSeq seq, Key key,
                                  std::vector<VertexId>* out) const {
  std::lock_guard lock(mu_);
  const Slice* slice = FindSlice(seq);
  if (slice == nullptr) {
    return;
  }
  auto it = slice->edges.find(key);
  if (it == slice->edges.end()) {
    return;
  }
  out->insert(out->end(), it->second.begin(), it->second.end());
}

size_t TransientStore::EdgeCount(BatchSeq seq, Key key) const {
  std::lock_guard lock(mu_);
  const Slice* slice = FindSlice(seq);
  if (slice == nullptr) {
    return 0;
  }
  auto it = slice->edges.find(key);
  return it == slice->edges.end() ? 0 : it->second.size();
}

size_t TransientStore::EvictBeforeLocked(BatchSeq min_live_seq) {
  size_t freed = 0;
  while (!slices_.empty() && slices_.front().seq < min_live_seq) {
    total_bytes_ -= slices_.front().bytes;
    gc_stats_.bytes_reclaimed += slices_.front().bytes;
    slices_.pop_front();
    ++freed;
  }
  gc_stats_.slices_reclaimed += freed;
  return freed;
}

void TransientStore::SetEvictionListener(EvictionListener listener) {
  std::lock_guard lock(mu_);
  listener_ = std::move(listener);
}

size_t TransientStore::EvictBefore(BatchSeq min_live_seq) {
  size_t freed = 0;
  EvictionListener listener;
  {
    std::lock_guard lock(mu_);
    freed = EvictBeforeLocked(min_live_seq);
    listener = listener_;
  }
  NotifyEviction(listener, freed, min_live_seq);
  return freed;
}

void TransientStore::SetGcHorizon(BatchSeq min_live_seq) {
  std::lock_guard lock(mu_);
  gc_horizon_ = std::max(gc_horizon_, min_live_seq);
}

size_t TransientStore::RunGc() {
  size_t freed = 0;
  BatchSeq min_live = 0;
  EvictionListener listener;
  {
    std::lock_guard lock(mu_);
    freed = EvictBeforeLocked(gc_horizon_);
    min_live = gc_horizon_;
    listener = listener_;
  }
  NotifyEviction(listener, freed, min_live);
  return freed;
}

size_t TransientStore::SliceCount() const {
  std::lock_guard lock(mu_);
  return slices_.size();
}

size_t TransientStore::MemoryBytes() const {
  std::lock_guard lock(mu_);
  return total_bytes_;
}

BatchSeq TransientStore::OldestSeq() const {
  std::lock_guard lock(mu_);
  return slices_.empty() ? kNoBatch : slices_.front().seq;
}

BatchSeq TransientStore::NewestSeq() const {
  std::lock_guard lock(mu_);
  return slices_.empty() ? kNoBatch : slices_.back().seq;
}

TransientStore::GcStats TransientStore::gc_stats() const {
  std::lock_guard lock(mu_);
  return gc_stats_;
}

}  // namespace wukongs
