#include "src/stream/transient_store.h"

#include <algorithm>
#include <cassert>

#include "src/stream/vts.h"

namespace wukongs {

TransientStore::TransientStore(size_t memory_budget_bytes)
    : memory_budget_bytes_(memory_budget_bytes) {}

bool TransientStore::AppendSlice(BatchSeq seq, const StreamTupleVec& timing_tuples) {
  std::vector<std::pair<Key, VertexId>> edges;
  edges.reserve(timing_tuples.size() * 2);
  for (const StreamTuple& t : timing_tuples) {
    assert(t.kind == TupleKind::kTiming);
    // Timing edges are indexed both ways, like persistent edges, so window
    // patterns can explore in either direction.
    edges.emplace_back(Key(t.triple.subject, t.triple.predicate, Dir::kOut),
                       t.triple.object);
    edges.emplace_back(Key(t.triple.object, t.triple.predicate, Dir::kIn),
                       t.triple.subject);
  }
  return AppendSlice(seq, edges);
}

bool TransientStore::AppendSlice(BatchSeq seq,
                                 const std::vector<std::pair<Key, VertexId>>& edges) {
  std::lock_guard lock(mu_);
  assert(slices_.empty() || slices_.back().seq < seq);

  Slice slice;
  slice.seq = seq;
  for (const auto& [key, value] : edges) {
    auto [it, created] = slice.edges.try_emplace(key);
    it->second.push_back(value);
    if (created && !key.is_index()) {
      // Seed the per-slice index vertex on first sight of a key.
      slice.edges[Key(kIndexVertex, key.pid(), key.dir())].push_back(key.vid());
    }
  }
  for (const auto& [key, value_list] : slice.edges) {
    slice.bytes += sizeof(Key) + 48 + value_list.capacity() * sizeof(VertexId);
  }

  if (memory_budget_bytes_ != 0 &&
      total_bytes_ + slice.bytes > memory_budget_bytes_) {
    // Ring buffer full: reclaim expired slices right now (paper: GC is
    // "explicitly invoked when the ring buffer is full").
    EvictBeforeLocked(gc_horizon_);
    if (total_bytes_ + slice.bytes > memory_budget_bytes_) {
      return false;
    }
  }
  total_bytes_ += slice.bytes;
  slices_.push_back(std::move(slice));
  return true;
}

const TransientStore::Slice* TransientStore::FindSlice(BatchSeq seq) const {
  if (slices_.empty() || seq < slices_.front().seq || seq > slices_.back().seq) {
    return nullptr;
  }
  size_t idx = static_cast<size_t>(seq - slices_.front().seq);
  // Slices are dense in practice (every batch creates one, possibly empty);
  // fall back to scan if a gap exists.
  if (idx < slices_.size() && slices_[idx].seq == seq) {
    return &slices_[idx];
  }
  for (const Slice& s : slices_) {
    if (s.seq == seq) {
      return &s;
    }
  }
  return nullptr;
}

void TransientStore::GetNeighbors(BatchSeq seq, Key key,
                                  std::vector<VertexId>* out) const {
  std::lock_guard lock(mu_);
  const Slice* slice = FindSlice(seq);
  if (slice == nullptr) {
    return;
  }
  auto it = slice->edges.find(key);
  if (it == slice->edges.end()) {
    return;
  }
  out->insert(out->end(), it->second.begin(), it->second.end());
}

size_t TransientStore::EdgeCount(BatchSeq seq, Key key) const {
  std::lock_guard lock(mu_);
  const Slice* slice = FindSlice(seq);
  if (slice == nullptr) {
    return 0;
  }
  auto it = slice->edges.find(key);
  return it == slice->edges.end() ? 0 : it->second.size();
}

size_t TransientStore::EvictBeforeLocked(BatchSeq min_live_seq) {
  size_t freed = 0;
  while (!slices_.empty() && slices_.front().seq < min_live_seq) {
    total_bytes_ -= slices_.front().bytes;
    slices_.pop_front();
    ++freed;
  }
  return freed;
}

size_t TransientStore::EvictBefore(BatchSeq min_live_seq) {
  std::lock_guard lock(mu_);
  return EvictBeforeLocked(min_live_seq);
}

void TransientStore::SetGcHorizon(BatchSeq min_live_seq) {
  std::lock_guard lock(mu_);
  gc_horizon_ = std::max(gc_horizon_, min_live_seq);
}

size_t TransientStore::RunGc() {
  std::lock_guard lock(mu_);
  return EvictBeforeLocked(gc_horizon_);
}

size_t TransientStore::SliceCount() const {
  std::lock_guard lock(mu_);
  return slices_.size();
}

size_t TransientStore::MemoryBytes() const {
  std::lock_guard lock(mu_);
  return total_bytes_;
}

BatchSeq TransientStore::OldestSeq() const {
  std::lock_guard lock(mu_);
  return slices_.empty() ? kNoBatch : slices_.front().seq;
}

BatchSeq TransientStore::NewestSeq() const {
  std::lock_guard lock(mu_);
  return slices_.empty() ? kNoBatch : slices_.back().seq;
}

}  // namespace wukongs
