#include "src/stream/stream_index.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/test_hooks.h"

namespace wukongs {

void StreamIndex::AddBatch(BatchSeq seq, const std::vector<AppendSpan>& spans) {
  std::lock_guard lock(mu_);
  assert(batches_.empty() || batches_.back().seq < seq);
  BatchIndex bi;
  bi.seq = seq;
  for (const AppendSpan& s : spans) {
    auto& list = bi.spans[s.key];
    // Coalesce with the previous span when appends were contiguous, which is
    // the common case since one batch appends to a key back-to-back.
    if (!list.empty() && list.back().start + list.back().count == s.start) {
      list.back().count += s.count;
    } else {
      list.push_back(IndexSpan{s.start, s.count});
    }
  }
  // Derive window seeds from the touched normal keys (deduped by map key).
  for (const auto& [key, list] : bi.spans) {
    if (!key.is_index()) {
      bi.seeds[Key(kIndexVertex, key.pid(), key.dir()).packed()].push_back(
          key.vid());
    }
  }
  // Accounting follows the paper's physical layout (§4.2): one entry per
  // (key, span) holding the 64-bit key plus a 96-bit fat pointer
  // (address + size), and the per-batch seed lists as packed vid arrays.
  constexpr size_t kEntryBytes = 8 + 12;
  for (const auto& [key, list] : bi.spans) {
    bi.bytes += list.size() * kEntryBytes;
  }
  for (const auto& [key, list] : bi.seeds) {
    bi.bytes += 8 + list.size() * sizeof(VertexId);
  }
  total_bytes_ += bi.bytes;
  batches_.push_back(std::move(bi));
}

bool StreamIndex::MergeBatch(BatchSeq seq, const std::vector<AppendSpan>& spans) {
  std::lock_guard lock(mu_);
  BatchIndex* bi = const_cast<BatchIndex*>(FindBatch(seq));
  if (bi == nullptr) {
    if (seq < evicted_below_) {
      return false;  // GC horizon passed it: no live window reaches it.
    }
    // Never indexed here: the node joined after this batch was delivered.
    // Materialize it in sequence order so replayed history is queryable
    // (FindBatch's dense fast path misses, its scan fallback still finds it).
    auto it = std::lower_bound(
        batches_.begin(), batches_.end(), seq,
        [](const BatchIndex& b, BatchSeq s) { return b.seq < s; });
    BatchIndex fresh;
    fresh.seq = seq;
    bi = &*batches_.insert(it, std::move(fresh));
  }
  total_bytes_ -= bi->bytes;
  for (const AppendSpan& s : spans) {
    bool seen = bi->spans.count(s.key) > 0;
    auto& list = bi->spans[s.key];
    if (!list.empty() && list.back().start + list.back().count == s.start) {
      list.back().count += s.count;
    } else {
      list.push_back(IndexSpan{s.start, s.count});
    }
    // A normal key newly touched in this batch joins the window seeds, same
    // as AddBatch's derivation (deduped within the batch, not across).
    if (!seen && !s.key.is_index()) {
      bi->seeds[Key(kIndexVertex, s.key.pid(), s.key.dir()).packed()].push_back(
          s.key.vid());
    }
  }
  bi->bytes = 0;
  constexpr size_t kEntryBytes = 8 + 12;
  for (const auto& [key, list] : bi->spans) {
    bi->bytes += list.size() * kEntryBytes;
  }
  for (const auto& [key, list] : bi->seeds) {
    bi->bytes += 8 + list.size() * sizeof(VertexId);
  }
  total_bytes_ += bi->bytes;
  return true;
}

size_t StreamIndex::PurgeShard(const std::function<bool(VertexId)>& in_shard) {
  std::lock_guard lock(mu_);
  size_t removed = 0;
  constexpr size_t kEntryBytes = 8 + 12;
  for (BatchIndex& bi : batches_) {
    total_bytes_ -= bi.bytes;
    for (auto it = bi.spans.begin(); it != bi.spans.end();) {
      if (!it->first.is_index() && in_shard(it->first.vid())) {
        ++removed;
        it = bi.spans.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [packed, vids] : bi.seeds) {
      (void)packed;
      vids.erase(std::remove_if(vids.begin(), vids.end(), in_shard),
                 vids.end());
    }
    bi.bytes = 0;
    for (const auto& [key, list] : bi.spans) {
      (void)key;
      bi.bytes += list.size() * kEntryBytes;
    }
    for (const auto& [packed, list] : bi.seeds) {
      (void)packed;
      bi.bytes += 8 + list.size() * sizeof(VertexId);
    }
    total_bytes_ += bi.bytes;
  }
  return removed;
}

const StreamIndex::BatchIndex* StreamIndex::FindBatch(BatchSeq seq) const {
  if (batches_.empty() || seq < batches_.front().seq || seq > batches_.back().seq) {
    return nullptr;
  }
  size_t idx = static_cast<size_t>(seq - batches_.front().seq);
  if (idx < batches_.size() && batches_[idx].seq == seq) {
    return &batches_[idx];
  }
  for (const BatchIndex& b : batches_) {
    if (b.seq == seq) {
      return &b;
    }
  }
  return nullptr;
}

bool StreamIndex::GetSpans(BatchSeq seq, Key key, std::vector<IndexSpan>* out) const {
  std::lock_guard lock(mu_);
  const BatchIndex* bi = FindBatch(seq);
  if (bi == nullptr) {
    ++lookups_.misses;
    return false;
  }
  ++lookups_.hits;
  auto it = bi->spans.find(key);
  if (it != bi->spans.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  return true;
}

size_t StreamIndex::SpanEdgeCount(BatchSeq seq, Key key) const {
  std::lock_guard lock(mu_);
  const BatchIndex* bi = FindBatch(seq);
  if (bi == nullptr) {
    return 0;
  }
  auto it = bi->spans.find(key);
  if (it == bi->spans.end()) {
    return 0;
  }
  size_t n = 0;
  for (const IndexSpan& s : it->second) {
    n += s.count;
  }
  return n;
}

bool StreamIndex::GetSeeds(BatchSeq seq, PredicateId pid, Dir dir,
                           std::vector<VertexId>* out) const {
  std::lock_guard lock(mu_);
  const BatchIndex* bi = FindBatch(seq);
  if (bi == nullptr) {
    ++lookups_.misses;
    return false;
  }
  ++lookups_.hits;
  auto it = bi->seeds.find(Key(kIndexVertex, pid, dir).packed());
  if (it != bi->seeds.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  return true;
}

size_t StreamIndex::SeedCount(BatchSeq seq, PredicateId pid, Dir dir) const {
  std::lock_guard lock(mu_);
  const BatchIndex* bi = FindBatch(seq);
  if (bi == nullptr) {
    return 0;
  }
  auto it = bi->seeds.find(Key(kIndexVertex, pid, dir).packed());
  return it == bi->seeds.end() ? 0 : it->second.size();
}

StreamIndex::LookupStats StreamIndex::lookup_stats() const {
  std::lock_guard lock(mu_);
  return lookups_;
}

void StreamIndex::SetEvictionListener(EvictionListener listener) {
  std::lock_guard lock(mu_);
  listener_ = std::move(listener);
}

size_t StreamIndex::EvictBefore(BatchSeq min_live_seq) {
  size_t freed = 0;
  EvictionListener listener;
  {
    std::lock_guard lock(mu_);
    while (!batches_.empty() && batches_.front().seq < min_live_seq) {
      total_bytes_ -= batches_.front().bytes;
      batches_.pop_front();
      ++freed;
    }
    evicted_below_ = std::max(evicted_below_, min_live_seq);
    listener = listener_;
  }
  // Fired outside the lock: listeners take the delta-cache lock and must not
  // nest inside ours. The planted skip_delta_invalidation fault suppresses
  // the notification so caches serve rows from reclaimed slices.
  if (freed > 0 && listener &&
      !test_hooks::skip_delta_invalidation.load(std::memory_order_relaxed)) {
    listener(min_live_seq);
  }
  return freed;
}

size_t StreamIndex::BatchCount() const {
  std::lock_guard lock(mu_);
  return batches_.size();
}

size_t StreamIndex::MemoryBytes() const {
  std::lock_guard lock(mu_);
  return total_bytes_;
}

BatchSeq StreamIndex::OldestSeq() const {
  std::lock_guard lock(mu_);
  return batches_.empty() ? kNoBatch : batches_.front().seq;
}

BatchSeq StreamIndex::NewestSeq() const {
  std::lock_guard lock(mu_);
  return batches_.empty() ? kNoBatch : batches_.back().seq;
}

}  // namespace wukongs
