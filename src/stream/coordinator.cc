#include "src/stream/coordinator.h"

#include <algorithm>
#include <cassert>

namespace wukongs {

Coordinator::Coordinator(uint32_t node_count, size_t reserved_snapshots,
                         uint64_t batches_per_sn, size_t max_plan_extensions)
    : node_count_(node_count),
      reserved_snapshots_(std::max<size_t>(reserved_snapshots, 2)),
      batches_per_sn_(std::max<uint64_t>(batches_per_sn, 1)),
      max_plan_extensions_(max_plan_extensions),
      local_vts_(node_count),
      active_(node_count, true) {}

void Coordinator::RegisterStream(StreamId stream) {
  std::lock_guard lock(mu_);
  if (stream >= stream_count_) {
    stream_count_ = stream + 1;
  }
  for (auto& vts : local_vts_) {
    if (vts.size() < stream_count_) {
      vts.Resize(stream_count_);
    }
  }
}

size_t Coordinator::stream_count() const {
  std::lock_guard lock(mu_);
  return stream_count_;
}

void Coordinator::ReportInjected(NodeId node, StreamId stream, BatchSeq seq) {
  std::lock_guard lock(mu_);
  assert(node < node_count_);
  BatchSeq prev = local_vts_[node].Get(stream);
  assert(prev == kNoBatch || seq == prev + 1);
  (void)prev;
  local_vts_[node].Set(stream, seq);
}

VectorTimestamp Coordinator::LocalVts(NodeId node) const {
  std::lock_guard lock(mu_);
  return local_vts_[node];
}

void Coordinator::SetNodeActive(NodeId node, bool active) {
  std::lock_guard lock(mu_);
  assert(node < node_count_);
  active_[node] = active;
}

bool Coordinator::node_active(NodeId node) const {
  std::lock_guard lock(mu_);
  return node < node_count_ && active_[node];
}

void Coordinator::ResetNode(NodeId node) {
  std::lock_guard lock(mu_);
  assert(node < node_count_);
  local_vts_[node] = VectorTimestamp(stream_count_);
}

NodeId Coordinator::AddNode(const VectorTimestamp& seed) {
  std::lock_guard lock(mu_);
  VectorTimestamp vts = seed;
  if (vts.size() < stream_count_) {
    vts.Resize(stream_count_);
  }
  local_vts_.push_back(std::move(vts));
  active_.push_back(true);
  return static_cast<NodeId>(node_count_++);
}

VectorTimestamp Coordinator::StableVtsLocked() const {
  // Element-wise min over *active* nodes only: a crashed node must not stall
  // the trigger condition for the survivors (graceful degradation).
  bool seeded = false;
  VectorTimestamp stable(stream_count_);
  for (size_t n = 0; n < local_vts_.size(); ++n) {
    if (!active_[n]) {
      continue;
    }
    if (!seeded) {
      stable = local_vts_[n];
      seeded = true;
    } else {
      stable = VectorTimestamp::Min(stable, local_vts_[n]);
    }
  }
  if (stable.size() < stream_count_) {
    stable.Resize(stream_count_);
  }
  return stable;
}

VectorTimestamp Coordinator::StableVts() const {
  std::lock_guard lock(mu_);
  return StableVtsLocked();
}

BatchRange Coordinator::StableAdvanceSince(StreamId stream,
                                           BatchSeq last_seen) const {
  std::lock_guard lock(mu_);
  BatchSeq stable = StableVtsLocked().Get(stream);
  BatchRange r;
  if (stable == kNoBatch || (last_seen != kNoBatch && stable <= last_seen)) {
    r.empty = true;
    return r;
  }
  r.lo = last_seen == kNoBatch ? 0 : last_seen + 1;
  r.hi = stable;
  return r;
}

SnapshotNum Coordinator::MaxSnCoveredLocked(const VectorTimestamp& vts) const {
  SnapshotNum sn = 0;  // kBaseSnapshot.
  for (const Plan& plan : plans_) {
    bool covered = true;
    for (size_t s = 0; s < plan.target.size(); ++s) {
      BatchSeq have = vts.Get(static_cast<StreamId>(s));
      if (have == kNoBatch || have < plan.target[s]) {
        covered = false;
        break;
      }
    }
    if (covered) {
      sn = plan.sn;
    } else {
      break;
    }
  }
  return sn;
}

SnapshotNum Coordinator::StableSn() const {
  std::lock_guard lock(mu_);
  if (local_vts_.empty()) {
    return 0;
  }
  return MaxSnCoveredLocked(StableVtsLocked());
}

SnapshotNum Coordinator::LocalSn(NodeId node) const {
  std::lock_guard lock(mu_);
  return MaxSnCoveredLocked(local_vts_[node]);
}

void Coordinator::ExtendPlanLocked() {
  Plan plan;
  if (plans_.empty()) {
    plan.sn = 1;
    plan.target.assign(stream_count_, batches_per_sn_ - 1);
  } else {
    const Plan& last = plans_.back();
    plan.sn = last.sn + 1;
    plan.target = last.target;
    plan.target.resize(stream_count_, kNoBatch);
    for (auto& t : plan.target) {
      t = (t == kNoBatch) ? batches_per_sn_ - 1 : t + batches_per_sn_;
    }
  }
  plans_.push_back(std::move(plan));
}

SnapshotNum Coordinator::PlanSnFor(StreamId stream, BatchSeq seq) {
  std::lock_guard lock(mu_);
  assert(stream < stream_count_);
  while (true) {
    for (const Plan& plan : plans_) {
      if (stream < plan.target.size() && seq <= plan.target[stream]) {
        return plan.sn;
      }
    }
    // Injection ran past the announced plans: publish another mapping. The
    // real injector would stall here until the Coordinator announces it.
    ExtendPlanLocked();
    ++plan_extensions_;
  }
}

bool Coordinator::CanPlanSnFor(StreamId stream, BatchSeq seq) const {
  std::lock_guard lock(mu_);
  if (max_plan_extensions_ == 0) {
    return true;
  }
  for (const Plan& plan : plans_) {
    if (stream < plan.target.size() && seq <= plan.target[stream]) {
      return true;  // Already announced.
    }
  }
  // How many extensions PlanSnFor would need, and where that would put the
  // frontier relative to Stable_SN.
  SnapshotNum frontier = 0;
  BatchSeq covered_through = kNoBatch;
  if (!plans_.empty()) {
    frontier = plans_.back().sn;
    if (stream < plans_.back().target.size()) {
      covered_through = plans_.back().target[stream];
    }
  }
  uint64_t have = covered_through == kNoBatch ? 0 : covered_through + 1;
  uint64_t need = seq + 1;
  uint64_t extensions = (need - have + batches_per_sn_ - 1) / batches_per_sn_;
  SnapshotNum stable = local_vts_.empty()
                           ? 0
                           : MaxSnCoveredLocked(StableVtsLocked());
  return frontier + extensions <= stable + max_plan_extensions_;
}

SnapshotNum Coordinator::CollapseFloor() const {
  SnapshotNum stable = StableSn();
  size_t reserve = reserved_snapshots_ - 1;
  return stable > reserve ? stable - reserve : 0;
}

size_t Coordinator::plan_count() const {
  std::lock_guard lock(mu_);
  return plans_.size();
}

size_t Coordinator::plan_extensions() const {
  std::lock_guard lock(mu_);
  return plan_extensions_;
}

}  // namespace wukongs
