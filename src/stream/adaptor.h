// Stream Adaptor (paper §3, Fig. 5).
//
// The Adaptor turns a raw tuple stream into mini-batches grouped by
// timestamp interval (default 100 ms), discards tuples the deployment does
// not care about, and classifies each tuple as timing or timeless. Tuples
// must arrive with non-decreasing timestamps (C-SPARQL's time model); a
// batch is emitted as soon as a tuple of a later interval arrives, or when
// the caller flushes logical time forward. Idle intervals emit empty batches
// so vector timestamps keep advancing on quiet streams.

#ifndef SRC_STREAM_ADAPTOR_H_
#define SRC_STREAM_ADAPTOR_H_

#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/rdf/triple.h"
#include "src/stream/batch.h"

namespace wukongs {

// Door-side load shedding (overload control): truncates the batch's *timing*
// subsequence to its first `max_keep_timing` tuples, dropping the rest — a
// suffix, never a middle, so the surviving batch is still a timestamp-ordered
// prefix. Timeless tuples are never shed (the persistent store must stay
// complete). Returns the number of timing tuples dropped.
size_t ShedTimingSuffix(StreamBatch* batch, size_t max_keep_timing);

// Timing tuples in the batch (the shed policy's denominator).
size_t CountTimingTuples(const StreamBatch& batch);

class StreamAdaptor {
 public:
  // `timing_predicates`: predicates whose tuples are timing data (transient
  // store only). `relevant_predicates`: if non-empty, tuples with other
  // predicates are discarded at the door.
  StreamAdaptor(StreamId stream, uint64_t interval_ms,
                std::unordered_set<PredicateId> timing_predicates,
                std::unordered_set<PredicateId> relevant_predicates = {});

  StreamId stream() const { return stream_; }
  uint64_t interval_ms() const { return interval_ms_; }

  // Ingests tuples in timestamp order, appending completed batches to `out`.
  // Returns InvalidArgument on a timestamp regression.
  Status Ingest(const StreamTupleVec& tuples, std::vector<StreamBatch>* out);

  // Advances logical time to `now_ms`, emitting every batch whose interval
  // ends at or before `now_ms` (including empty ones).
  void AdvanceTo(StreamTime now_ms, std::vector<StreamBatch>* out);

  BatchSeq next_seq() const { return next_seq_; }

  // Recovery: skip the adaptor ahead so live feeding resumes after replayed
  // batches. Pending tuples (none during recovery) are dropped.
  void FastForward(BatchSeq next_seq);

 private:
  void EmitThrough(BatchSeq last_seq, std::vector<StreamBatch>* out);

  const StreamId stream_;
  const uint64_t interval_ms_;
  const std::unordered_set<PredicateId> timing_predicates_;
  const std::unordered_set<PredicateId> relevant_predicates_;

  BatchSeq next_seq_ = 0;  // First batch not yet emitted.
  StreamTime last_ts_ = 0;
  StreamTupleVec pending_;  // Tuples of batch `next_seq_` onwards.
};

}  // namespace wukongs

#endif  // SRC_STREAM_ADAPTOR_H_
