// Stream batches: the unit of injection, visibility and indexing.
//
// The Adaptor groups incoming tuples into mini-batches of a fixed interval
// (the paper uses 100 ms batches, "similar to mini batches ... in Spark
// Streaming"), identified by a monotone BatchSeq per stream. Batch b covers
// stream time [b * interval, (b + 1) * interval).

#ifndef SRC_STREAM_BATCH_H_
#define SRC_STREAM_BATCH_H_

#include <vector>

#include "src/common/ids.h"
#include "src/common/test_hooks.h"
#include "src/rdf/triple.h"

namespace wukongs {

inline constexpr uint64_t kDefaultBatchIntervalMs = 100;

struct StreamBatch {
  StreamId stream = 0;
  BatchSeq seq = 0;
  StreamTupleVec tuples;
};

inline BatchSeq BatchOfTime(StreamTime t, uint64_t interval_ms) {
  return t / interval_ms;
}

// Batch range [lo, hi] covered by window (now - range, now]; `now` is the
// trigger instant, i.e. the window's exclusive upper bound rounded to a step.
struct BatchRange {
  BatchSeq lo = 0;
  BatchSeq hi = 0;
  bool empty = false;
};

inline BatchRange WindowBatches(StreamTime now_ms, uint64_t range_ms,
                                uint64_t interval_ms) {
  BatchRange r;
  if (now_ms == 0) {
    r.empty = true;
    return r;
  }
  StreamTime start = now_ms > range_ms ? now_ms - range_ms : 0;
  r.lo = start / interval_ms;
  r.hi = (now_ms - 1) / interval_ms;
  if (test_hooks::off_by_one_window.load(std::memory_order_relaxed)) {
    r.hi += 1;  // Planted defect: the window swallows one future batch.
  }
  return r;
}

}  // namespace wukongs

#endif  // SRC_STREAM_BATCH_H_
