#include "src/stream/checkpoint.h"

#include <cstring>

namespace wukongs {
namespace {

constexpr uint32_t kLogMagic = 0x574b4c47;  // "WKLG"
constexpr uint32_t kRegMagic = 0x574b5247;  // "WKRG"

bool WriteU32(std::FILE* f, uint32_t v) { return std::fwrite(&v, 4, 1, f) == 1; }
bool WriteU64(std::FILE* f, uint64_t v) { return std::fwrite(&v, 8, 1, f) == 1; }
bool ReadU32(std::FILE* f, uint32_t* v) { return std::fread(v, 4, 1, f) == 1; }
bool ReadU64(std::FILE* f, uint64_t* v) { return std::fread(v, 8, 1, f) == 1; }

}  // namespace

CheckpointLog::CheckpointLog(std::FILE* file) : file_(file) {}

CheckpointLog::CheckpointLog(CheckpointLog&& other) noexcept {
  std::lock_guard lock(other.mu_);
  file_ = other.file_;
  appended_ = other.appended_;
  other.file_ = nullptr;
}

CheckpointLog::~CheckpointLog() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

StatusOr<CheckpointLog> CheckpointLog::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint log " + path);
  }
  if (!WriteU32(f, kLogMagic)) {
    std::fclose(f);
    return Status::Internal("cannot write checkpoint header");
  }
  return CheckpointLog(f);
}

Status CheckpointLog::Append(const StreamBatch& batch) {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log is closed");
  }
  bool ok = WriteU32(file_, batch.stream) && WriteU64(file_, batch.seq) &&
            WriteU64(file_, batch.tuples.size());
  for (const StreamTuple& t : batch.tuples) {
    if (!ok) {
      break;
    }
    ok = WriteU64(file_, t.triple.subject) && WriteU32(file_, t.triple.predicate) &&
         WriteU64(file_, t.triple.object) && WriteU64(file_, t.timestamp) &&
         WriteU32(file_, static_cast<uint32_t>(t.kind));
  }
  if (!ok) {
    return Status::Internal("short write to checkpoint log");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("cannot flush checkpoint log");
  }
  ++appended_;
  return Status::Ok();
}

Status CheckpointLog::Sync() {
  std::lock_guard lock(mu_);
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::Internal("cannot flush checkpoint log");
  }
  return Status::Ok();
}

StatusOr<std::vector<StreamBatch>> ReadCheckpointLog(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open checkpoint log " + path);
  }
  uint32_t magic = 0;
  if (!ReadU32(f, &magic) || magic != kLogMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad checkpoint log header");
  }
  std::vector<StreamBatch> out;
  while (true) {
    StreamBatch batch;
    uint32_t stream = 0;
    if (!ReadU32(f, &stream)) {
      break;  // Clean EOF.
    }
    uint64_t seq = 0;
    uint64_t count = 0;
    if (!ReadU64(f, &seq) || !ReadU64(f, &count)) {
      std::fclose(f);
      return Status::InvalidArgument("truncated checkpoint record header");
    }
    batch.stream = stream;
    batch.seq = seq;
    batch.tuples.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      StreamTuple t;
      uint32_t pred = 0;
      uint32_t kind = 0;
      if (!ReadU64(f, &t.triple.subject) || !ReadU32(f, &pred) ||
          !ReadU64(f, &t.triple.object) || !ReadU64(f, &t.timestamp) ||
          !ReadU32(f, &kind)) {
        std::fclose(f);
        // A torn final record is expected after a crash: drop it.
        return out;
      }
      t.triple.predicate = pred;
      t.kind = static_cast<TupleKind>(kind);
      batch.tuples.push_back(t);
    }
    out.push_back(std::move(batch));
  }
  std::fclose(f);
  return out;
}

Status WriteQueryRegistry(const std::string& path,
                          const std::vector<RegisteredQueryRecord>& queries) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open query registry " + path);
  }
  bool ok = WriteU32(f, kRegMagic) && WriteU64(f, queries.size());
  for (const RegisteredQueryRecord& q : queries) {
    if (!ok) {
      break;
    }
    ok = WriteU32(f, q.home) && WriteU64(f, q.text.size()) &&
         std::fwrite(q.text.data(), 1, q.text.size(), f) == q.text.size();
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::Internal("short write to query registry");
}

StatusOr<std::vector<RegisteredQueryRecord>> ReadQueryRegistry(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open query registry " + path);
  }
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadU32(f, &magic) || magic != kRegMagic || !ReadU64(f, &count)) {
    std::fclose(f);
    return Status::InvalidArgument("bad query registry header");
  }
  std::vector<RegisteredQueryRecord> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RegisteredQueryRecord rec;
    uint64_t len = 0;
    if (!ReadU32(f, &rec.home) || !ReadU64(f, &len)) {
      std::fclose(f);
      return Status::InvalidArgument("truncated query registry");
    }
    rec.text.resize(len);
    if (std::fread(rec.text.data(), 1, len, f) != len) {
      std::fclose(f);
      return Status::InvalidArgument("truncated query registry text");
    }
    out.push_back(std::move(rec));
  }
  std::fclose(f);
  return out;
}

}  // namespace wukongs
