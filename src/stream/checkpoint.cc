#include "src/stream/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"

namespace wukongs {
namespace {

constexpr uint32_t kLogMagic = 0x574b4c32;  // "WKL2" (v2: CRC32 footers).
constexpr uint32_t kRegMagic = 0x574b5247;  // "WKRG"

bool WriteU32(std::FILE* f, uint32_t v) { return std::fwrite(&v, 4, 1, f) == 1; }
bool WriteU64(std::FILE* f, uint64_t v) { return std::fwrite(&v, 8, 1, f) == 1; }
bool ReadU32(std::FILE* f, uint32_t* v) { return std::fread(v, 4, 1, f) == 1; }
bool ReadU64(std::FILE* f, uint64_t* v) { return std::fread(v, 8, 1, f) == 1; }

void PutU32(std::vector<unsigned char>* buf, uint32_t v) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(&v);
  buf->insert(buf->end(), p, p + 4);
}
void PutU64(std::vector<unsigned char>* buf, uint64_t v) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(&v);
  buf->insert(buf->end(), p, p + 8);
}

}  // namespace

CheckpointLog::CheckpointLog(std::FILE* file) : file_(file) {}

CheckpointLog::CheckpointLog(CheckpointLog&& other) noexcept {
  std::lock_guard lock(other.mu_);
  file_ = other.file_;
  appended_ = other.appended_;
  other.file_ = nullptr;
}

CheckpointLog::~CheckpointLog() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

StatusOr<CheckpointLog> CheckpointLog::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open checkpoint log " + path);
  }
  if (!WriteU32(f, kLogMagic)) {
    std::fclose(f);
    return Status::Internal("cannot write checkpoint header");
  }
  return CheckpointLog(f);
}

Status CheckpointLog::Append(const StreamBatch& batch) {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("checkpoint log is closed");
  }
  // Serialize the payload first so the CRC32 footer covers exactly the bytes
  // written, and the record hits the stdio buffer in one fwrite.
  std::vector<unsigned char> payload;
  payload.reserve(20 + batch.tuples.size() * 32);
  PutU32(&payload, batch.stream);
  PutU64(&payload, batch.seq);
  PutU64(&payload, batch.tuples.size());
  for (const StreamTuple& t : batch.tuples) {
    PutU64(&payload, t.triple.subject);
    PutU32(&payload, t.triple.predicate);
    PutU64(&payload, t.triple.object);
    PutU64(&payload, t.timestamp);
    PutU32(&payload, static_cast<uint32_t>(t.kind));
  }
  uint32_t crc = Crc32(payload.data(), payload.size());
  PutU32(&payload, crc);
  if (std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return Status::Internal("short write to checkpoint log");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("cannot flush checkpoint log");
  }
  ++appended_;
  return Status::Ok();
}

Status CheckpointLog::Sync() {
  std::lock_guard lock(mu_);
  if (file_ == nullptr) {
    return Status::Ok();
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("cannot flush checkpoint log");
  }
  // fflush only moves bytes into the kernel; durability needs the device
  // write-back too (the durability contract in checkpoint.h).
  if (::fsync(::fileno(file_)) != 0) {
    return Status::Internal("cannot fsync checkpoint log");
  }
  return Status::Ok();
}

StatusOr<std::vector<StreamBatch>> ReadCheckpointLog(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open checkpoint log " + path);
  }
  std::vector<StreamBatch> out;
  uint32_t magic = 0;
  if (!ReadU32(f, &magic)) {
    // Torn inside the magic itself: an empty (all-lost) but valid log.
    std::fclose(f);
    return out;
  }
  if (magic != kLogMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad checkpoint log header");
  }
  while (true) {
    StreamBatch batch;
    uint32_t stream = 0;
    uint64_t seq = 0;
    uint64_t count = 0;
    // Any short read below is a torn tail: stop and return the clean prefix.
    if (!ReadU32(f, &stream) || !ReadU64(f, &seq) || !ReadU64(f, &count)) {
      break;
    }
    uint32_t crc = kCrc32Init;
    crc = Crc32(&stream, 4, crc);
    crc = Crc32(&seq, 8, crc);
    crc = Crc32(&count, 8, crc);
    batch.stream = stream;
    batch.seq = seq;
    // A corrupted count could claim an absurd size; cap the reservation and
    // let the per-tuple reads (and the CRC) catch the lie.
    batch.tuples.reserve(static_cast<size_t>(std::min<uint64_t>(count, 1 << 20)));
    bool torn = false;
    for (uint64_t i = 0; i < count && !torn; ++i) {
      StreamTuple t;
      uint32_t pred = 0;
      uint32_t kind = 0;
      if (!ReadU64(f, &t.triple.subject) || !ReadU32(f, &pred) ||
          !ReadU64(f, &t.triple.object) || !ReadU64(f, &t.timestamp) ||
          !ReadU32(f, &kind)) {
        torn = true;
        break;
      }
      crc = Crc32(&t.triple.subject, 8, crc);
      crc = Crc32(&pred, 4, crc);
      crc = Crc32(&t.triple.object, 8, crc);
      crc = Crc32(&t.timestamp, 8, crc);
      crc = Crc32(&kind, 4, crc);
      t.triple.predicate = pred;
      t.kind = static_cast<TupleKind>(kind);
      batch.tuples.push_back(t);
    }
    uint32_t stored_crc = 0;
    if (torn || !ReadU32(f, &stored_crc)) {
      break;  // Torn body or missing footer: drop the record.
    }
    if (stored_crc != crc) {
      break;  // Corrupted (not merely torn) tail: drop it; nothing after a
              // bad record can be trusted either.
    }
    out.push_back(std::move(batch));
  }
  std::fclose(f);
  return out;
}

Status WriteQueryRegistry(const std::string& path,
                          const std::vector<RegisteredQueryRecord>& queries) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open query registry " + path);
  }
  bool ok = WriteU32(f, kRegMagic) && WriteU64(f, queries.size());
  for (const RegisteredQueryRecord& q : queries) {
    if (!ok) {
      break;
    }
    ok = WriteU32(f, q.home) && WriteU64(f, q.text.size()) &&
         std::fwrite(q.text.data(), 1, q.text.size(), f) == q.text.size();
  }
  if (ok) {
    ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::Internal("short write to query registry");
}

StatusOr<std::vector<RegisteredQueryRecord>> ReadQueryRegistry(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open query registry " + path);
  }
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadU32(f, &magic) || magic != kRegMagic || !ReadU64(f, &count)) {
    std::fclose(f);
    return Status::InvalidArgument("bad query registry header");
  }
  std::vector<RegisteredQueryRecord> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RegisteredQueryRecord rec;
    uint64_t len = 0;
    if (!ReadU32(f, &rec.home) || !ReadU64(f, &len)) {
      std::fclose(f);
      return Status::InvalidArgument("truncated query registry");
    }
    rec.text.resize(len);
    if (std::fread(rec.text.data(), 1, len, f) != len) {
      std::fclose(f);
      return Status::InvalidArgument("truncated query registry text");
    }
    out.push_back(std::move(rec));
  }
  std::fclose(f);
  return out;
}

}  // namespace wukongs
