// Incremental checkpointing and recovery (paper §5, "Fault tolerance").
//
// The engine assumes upstream backup: sources replay unacknowledged data, so
// the store only needs to persist (a) registered continuous queries and
// (b) injected stream batches since the last checkpoint, plus the vector
// timestamps. CheckpointLog appends batches as they are injected (hook it to
// Cluster::SetBatchLogger); CheckpointReader replays them into a fresh
// cluster. Recovery gives at-least-once semantics — re-executed windows are
// deduplicated client-side by their window end time, as the paper notes.

#ifndef SRC_STREAM_CHECKPOINT_H_
#define SRC_STREAM_CHECKPOINT_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/stream/batch.h"

namespace wukongs {

class CheckpointLog {
 public:
  // Opens (truncating) a batch log at `path`.
  static StatusOr<CheckpointLog> Create(const std::string& path);
  ~CheckpointLog();

  CheckpointLog(CheckpointLog&& other) noexcept;
  CheckpointLog& operator=(CheckpointLog&&) = delete;
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  // Appends one batch record; thread-safe. Flushes record-atomically so a
  // crash loses at most the in-flight record.
  Status Append(const StreamBatch& batch);

  // Durably persists buffered records.
  Status Sync();

  size_t appended_batches() const { return appended_; }

 private:
  explicit CheckpointLog(std::FILE* file);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  size_t appended_ = 0;
};

// Reads a whole checkpoint log back; batches appear in append order, which
// preserves per-stream batch order (sufficient — the paper notes cross-stream
// order within a checkpoint "is not important after recovery").
StatusOr<std::vector<StreamBatch>> ReadCheckpointLog(const std::string& path);

// Persisted continuous-query registrations (query text + home node).
struct RegisteredQueryRecord {
  std::string text;
  uint32_t home = 0;
};

Status WriteQueryRegistry(const std::string& path,
                          const std::vector<RegisteredQueryRecord>& queries);
StatusOr<std::vector<RegisteredQueryRecord>> ReadQueryRegistry(
    const std::string& path);

}  // namespace wukongs

#endif  // SRC_STREAM_CHECKPOINT_H_
