// Incremental checkpointing and recovery (paper §5, "Fault tolerance").
//
// The engine assumes upstream backup: sources replay unacknowledged data, so
// the store only needs to persist (a) registered continuous queries and
// (b) injected stream batches since the last checkpoint, plus the vector
// timestamps. CheckpointLog appends batches as they are injected (hook it to
// Cluster::SetBatchLogger); ReadCheckpointLog replays them into a fresh
// cluster. Recovery gives at-least-once semantics — re-executed windows are
// deduplicated client-side by their window end time, as the paper notes.
//
// On-disk format (version 2): a 4-byte magic, then a sequence of records.
// Each record is [stream u32 | seq u64 | count u64 | count tuples | crc u32]
// where the CRC32 footer covers every payload byte before it. The reader
// returns the longest clean prefix: a record whose tail is missing (torn by
// a crash mid-append) or whose CRC mismatches (corrupted tail) is dropped,
// never surfaced as an error — after a crash both are expected states, and
// upstream backup re-supplies whatever the log lost.
//
// Durability contract: Append is record-atomic in the *process* (the stdio
// buffer is flushed per record, so a process crash loses at most the
// in-flight record) but not durable against power loss; Sync() flushes stdio
// AND fsyncs the underlying descriptor, so records appended before a
// successful Sync() survive an OS/power failure. Recovery points should be
// taken at Sync() boundaries.

#ifndef SRC_STREAM_CHECKPOINT_H_
#define SRC_STREAM_CHECKPOINT_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/stream/batch.h"

namespace wukongs {

class CheckpointLog {
 public:
  // Opens (truncating) a batch log at `path`.
  static StatusOr<CheckpointLog> Create(const std::string& path);
  ~CheckpointLog();

  CheckpointLog(CheckpointLog&& other) noexcept;
  CheckpointLog& operator=(CheckpointLog&&) = delete;
  CheckpointLog(const CheckpointLog&) = delete;
  CheckpointLog& operator=(const CheckpointLog&) = delete;

  // Appends one batch record with a CRC32 footer; thread-safe. Flushes
  // record-atomically so a process crash loses at most the in-flight record.
  // Not durable against power loss until the next Sync().
  Status Append(const StreamBatch& batch);

  // Durably persists every appended record: flushes the stdio buffer and
  // fsyncs the file descriptor. See the durability contract above.
  Status Sync();

  size_t appended_batches() const { return appended_; }

 private:
  explicit CheckpointLog(std::FILE* file);

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  size_t appended_ = 0;
};

// Reads a whole checkpoint log back; batches appear in append order, which
// preserves per-stream batch order (sufficient — the paper notes cross-stream
// order within a checkpoint "is not important after recovery").
//
// Never errors on a torn or corrupted tail: a record with a truncated header,
// truncated body, missing CRC footer, or mismatching CRC ends the scan and
// the clean prefix before it is returned. A file torn inside the 4-byte magic
// reads as an empty log. Only a *wrong* (fully present) magic — a file that
// was never a checkpoint log — is an error.
StatusOr<std::vector<StreamBatch>> ReadCheckpointLog(const std::string& path);

// Persisted continuous-query registrations (query text + home node).
struct RegisteredQueryRecord {
  std::string text;
  uint32_t home = 0;
};

Status WriteQueryRegistry(const std::string& path,
                          const std::vector<RegisteredQueryRecord>& queries);
StatusOr<std::vector<RegisteredQueryRecord>> ReadQueryRegistry(
    const std::string& path);

}  // namespace wukongs

#endif  // SRC_STREAM_CHECKPOINT_H_
