#include "src/stream/adaptor.h"

#include <algorithm>
#include <cassert>

namespace wukongs {

size_t CountTimingTuples(const StreamBatch& batch) {
  size_t n = 0;
  for (const StreamTuple& t : batch.tuples) {
    if (t.kind == TupleKind::kTiming) {
      ++n;
    }
  }
  return n;
}

size_t ShedTimingSuffix(StreamBatch* batch, size_t max_keep_timing) {
  size_t kept_timing = 0;
  size_t shed = 0;
  size_t write = 0;
  for (size_t read = 0; read < batch->tuples.size(); ++read) {
    StreamTuple& t = batch->tuples[read];
    if (t.kind == TupleKind::kTiming) {
      if (kept_timing >= max_keep_timing) {
        ++shed;  // Timing suffix: everything past the keep budget drops.
        continue;
      }
      ++kept_timing;
    }
    if (write != read) {
      batch->tuples[write] = std::move(t);
    }
    ++write;
  }
  batch->tuples.resize(write);
  return shed;
}

StreamAdaptor::StreamAdaptor(StreamId stream, uint64_t interval_ms,
                             std::unordered_set<PredicateId> timing_predicates,
                             std::unordered_set<PredicateId> relevant_predicates)
    : stream_(stream),
      interval_ms_(interval_ms),
      timing_predicates_(std::move(timing_predicates)),
      relevant_predicates_(std::move(relevant_predicates)) {
  assert(interval_ms_ > 0);
}

Status StreamAdaptor::Ingest(const StreamTupleVec& tuples,
                             std::vector<StreamBatch>* out) {
  for (StreamTuple t : tuples) {
    if (t.timestamp < last_ts_) {
      return Status::InvalidArgument("stream timestamps must be non-decreasing");
    }
    last_ts_ = t.timestamp;
    BatchSeq seq = BatchOfTime(t.timestamp, interval_ms_);
    if (seq < next_seq_) {
      return Status::InvalidArgument("tuple belongs to an already-emitted batch");
    }
    if (seq > next_seq_) {
      EmitThrough(seq - 1, out);
    }
    if (!relevant_predicates_.empty() &&
        relevant_predicates_.count(t.triple.predicate) == 0) {
      continue;  // Unrelated tuple: discarded during batching (paper §3).
    }
    t.kind = timing_predicates_.count(t.triple.predicate) > 0 ? TupleKind::kTiming
                                                              : TupleKind::kTimeless;
    pending_.push_back(t);
  }
  return Status::Ok();
}

void StreamAdaptor::AdvanceTo(StreamTime now_ms, std::vector<StreamBatch>* out) {
  if (now_ms < interval_ms_) {
    return;
  }
  // Every batch whose interval end <= now_ms is complete.
  BatchSeq last_complete = now_ms / interval_ms_;
  if (last_complete == 0) {
    return;
  }
  EmitThrough(last_complete - 1, out);
  last_ts_ = std::max(last_ts_, now_ms);
}

void StreamAdaptor::FastForward(BatchSeq next_seq) {
  if (next_seq <= next_seq_) {
    return;
  }
  next_seq_ = next_seq;
  last_ts_ = std::max(last_ts_, next_seq * interval_ms_);
  pending_.clear();
}

void StreamAdaptor::EmitThrough(BatchSeq last_seq, std::vector<StreamBatch>* out) {
  while (next_seq_ <= last_seq) {
    StreamBatch batch;
    batch.stream = stream_;
    batch.seq = next_seq_;
    // pending_ holds tuples in timestamp order; peel off this batch's prefix.
    size_t take = 0;
    while (take < pending_.size() &&
           BatchOfTime(pending_[take].timestamp, interval_ms_) == next_seq_) {
      ++take;
    }
    batch.tuples.assign(pending_.begin(), pending_.begin() + static_cast<long>(take));
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(take));
    out->push_back(std::move(batch));
    ++next_seq_;
  }
}

}  // namespace wukongs
