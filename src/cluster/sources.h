// NeighborSource implementations over the simulated cluster.
//
// StoreSource answers stored-graph patterns against the sharded persistent
// store at a fixed snapshot. WindowSource answers stream-window patterns by
// unioning, over the window's batch range, the stream index's spans into
// persistent values (timeless data) and the transient slices (timing data).
//
// Charging policy: under in-place execution every touch of a remote shard
// deposits one one-sided read into SimCost (the stream index itself is
// locally replicated, so index lookups are free — §4.2/§5). Under fork-join
// the engine charges per-step shipping instead, so sources run with
// kNoCharge.
//
// Fault handling: in-place reads go through Fabric's fallible surface under
// a RetryPolicy — a lost read retries with exponential backoff (charged into
// SimCost, so degraded latency is measured), and a shard whose node is down
// (quarantined) is skipped entirely, with the skip recorded in DegradeState
// so the execution can surface "results may be partial" instead of crashing.

#ifndef SRC_CLUSTER_SOURCES_H_
#define SRC_CLUSTER_SOURCES_H_

#include <memory>
#include <vector>

#include "src/cluster/reconfig.h"
#include "src/common/retry.h"
#include "src/engine/neighbor_source.h"
#include "src/rdma/fabric.h"
#include "src/store/gstore.h"
#include "src/stream/batch.h"
#include "src/stream/stream_index.h"
#include "src/stream/transient_store.h"

namespace wukongs {

enum class ChargePolicy {
  kInPlace,   // Remote shard touches pay a one-sided read.
  kNoCharge,  // Fork-join: engine charges per-step shipping.
};

// Per-execution fault/degradation accounting, shared by every source of one
// query execution. GetNeighbors is const on the source, so the state is an
// out-of-band pointer rather than a member mutation.
struct DegradeState {
  bool partial = false;         // Some shard's data could not be served.
  uint64_t skipped_shards = 0;  // Reads skipped because the owner was down.
  RetryStats retry;             // Fabric read retries during this execution.

  // Deadline accounting (DESIGN.md §5.11). Remote work cancelled because
  // the latency budget ran out is tracked separately from fault-degraded
  // work: both make the result partial, but only deadline cancellation
  // feeds the declared completeness fraction's read/step terms.
  bool deadline_expired = false;        // Budget ran out mid-execution.
  uint64_t reads_ok = 0;                // Charged in-place reads served.
  uint64_t deadline_skipped_reads = 0;  // Reads cancelled: budget exhausted.
  uint64_t steps_done = 0;              // Fork-join rounds executed.
  uint64_t steps_cancelled = 0;         // Rounds cancelled: budget exhausted.
};

// Hash partitioning of vertices over nodes. Index keys ([0|pid|dir]) are
// partitioned too: every node owns the portion listing its local vertices.
// With online reconfiguration (DESIGN.md §5.10) this is only the *initial*
// assignment; executions that carry an OwnershipView route by its epoch's
// shard map instead, and additionally filter index-key reads so data of a
// moved (or partially copied then aborted) shard is served by exactly its
// current owner.
inline NodeId OwnerOfVertex(VertexId v, uint32_t nodes) {
  return static_cast<NodeId>(KeyHash{}(Key(v, 0, Dir::kOut)) % nodes);
}

class StoreSource : public NeighborSource {
 public:
  // `view`: the ownership epoch this execution was admitted under (null =
  // legacy hash partitioning; identity views take the same fast path).
  StoreSource(const std::vector<GStore*>& shards, Fabric* fabric, NodeId home,
              SnapshotNum snapshot, ChargePolicy policy,
              const RetryPolicy* retry = nullptr,
              DegradeState* degrade = nullptr,
              std::shared_ptr<const OwnershipView> view = nullptr);

  void GetNeighbors(Key key, std::vector<VertexId>* out) const override;
  size_t EstimateCount(Key key) const override;

 private:
  const std::vector<GStore*>& shards_;
  Fabric* fabric_;
  const NodeId home_;
  const SnapshotNum snapshot_;
  const ChargePolicy policy_;
  const RetryPolicy* retry_;  // Null: infallible legacy charging.
  DegradeState* degrade_;     // Null: degradation not tracked.
  const std::shared_ptr<const OwnershipView> view_;
};

// One stream's view for one window (batch range [lo, hi]).
class WindowSource : public NeighborSource {
 public:
  // `indexes[n]` / `transients[n]` are node n's structures for this stream;
  // `shards[n]` the persistent shards the index spans point into.
  // `local_index`: the stream index is replicated on the querying node
  // (locality-aware partitioning); when false, remote index lookups pay an
  // extra one-sided read per touched node+batch.
  WindowSource(const std::vector<GStore*>& shards,
               const std::vector<StreamIndex*>& indexes,
               const std::vector<TransientStore*>& transients, Fabric* fabric,
               NodeId home, BatchRange range, ChargePolicy policy,
               bool local_index = true, const RetryPolicy* retry = nullptr,
               DegradeState* degrade = nullptr,
               std::shared_ptr<const OwnershipView> view = nullptr);

  void GetNeighbors(Key key, std::vector<VertexId>* out) const override;
  size_t EstimateCount(Key key) const override;

 private:
  void CollectFromNode(NodeId n, Key key, std::vector<VertexId>* out) const;
  // Charges one in-place remote read of `bytes` from node `n`, with retries.
  // Returns false when every attempt failed — the caller must roll back the
  // copied span (the data never actually arrived) and mark the result
  // partial. Infallible (always true) when no retry policy is attached.
  bool ChargeRead(NodeId n, size_t bytes) const;

  const std::vector<GStore*>& shards_;
  const std::vector<StreamIndex*>& indexes_;
  const std::vector<TransientStore*>& transients_;
  Fabric* fabric_;
  const NodeId home_;
  const BatchRange range_;
  const ChargePolicy policy_;
  const bool local_index_;
  const RetryPolicy* retry_;
  DegradeState* degrade_;
  const std::shared_ptr<const OwnershipView> view_;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_SOURCES_H_
