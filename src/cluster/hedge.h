// Hedged sub-request bookkeeping (DESIGN.md §5.11).
//
// When a fork-join sub-query exceeds the hedge delay, a backup copy is
// issued to a healthy peer; both the primary and the backup may ultimately
// deliver a response for the same logical sub-request. Correctness demands
// exactly-once merging: the join must fold in exactly one response per
// sub-request, whichever arrived first, and discard the loser even when it
// arrives later with identical bindings. HedgeDedup is that gate — the
// WindowDedup idea (recovery_manager.h) applied per sub-request instead of
// per (query, window): first response wins, duplicates are suppressed and
// counted, and a duplicate whose payload digest disagrees with the winner's
// is flagged as a mismatch (it would mean the two paths computed different
// bindings for the same deterministic sub-query — a correctness bug the
// differential audit must see, never silently merge).

#ifndef SRC_CLUSTER_HEDGE_H_
#define SRC_CLUSTER_HEDGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace wukongs {

struct HedgeConfig {
  bool enabled = false;       // Off by default: zero behavior change.
  double margin_mult = 1.5;   // Hedge delay = margin_mult * p95(node rounds).
  double min_delay_ns = 2000.0;  // Floor: never hedge faster than ~1 RTT.
  size_t min_samples = 8;     // Histogram warm-up before hedging arms.
};

class HedgeDedup {
 public:
  // Registers a response for `sub_id` with payload `digest`. Returns true
  // when this is the first response (the caller merges it), false when a
  // response already won (the caller drops this one).
  bool Accept(uint64_t sub_id, const std::string& digest) {
    auto [it, inserted] = seen_.try_emplace(sub_id, digest);
    if (inserted) {
      ++accepted_;
      return true;
    }
    ++duplicates_;
    if (it->second != digest) {
      ++mismatches_;
    }
    return false;
  }

  uint64_t accepted() const { return accepted_; }
  uint64_t duplicates() const { return duplicates_; }
  // Duplicates whose payload differed from the winner's: must stay 0, the
  // hedged path replays a deterministic sub-query.
  uint64_t mismatches() const { return mismatches_; }

 private:
  std::unordered_map<uint64_t, std::string> seen_;
  uint64_t accepted_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t mismatches_ = 0;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_HEDGE_H_
