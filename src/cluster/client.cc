#include "src/cluster/client.h"

namespace wukongs {

Client::Client(Cluster* cluster, NodeId home)
    : cluster_(cluster), home_(home % cluster->node_count()) {}

StatusOr<Query> Client::Parse(const std::string& text) {
  auto it = procedures_.find(text);
  if (it != procedures_.end()) {
    ++stats_.procedure_cache_hits;
    return it->second;
  }
  auto q = ParseQuery(text, cluster_->strings());
  if (!q.ok()) {
    return q.status();
  }
  procedures_.emplace(text, *q);
  return std::move(*q);
}

StatusOr<QueryExecution> Client::Submit(const std::string& text,
                                        double deadline_ms) {
  auto q = Parse(text);
  if (!q.ok()) {
    return q.status();
  }
  ++stats_.one_shot_queries;
  auto exec = cluster_->OneShotParsed(*q, home_, deadline_ms);
  if (exec.ok()) {
    stats_.total_latency_ms += exec->latency_ms();
    if (exec->deadline_expired) {
      ++stats_.deadline_expired;
    }
  }
  return exec;
}

StatusOr<Cluster::ContinuousHandle> Client::Register(const std::string& text) {
  auto q = Parse(text);
  if (!q.ok()) {
    return q.status();
  }
  ++stats_.registrations;
  return cluster_->RegisterContinuousParsed(*q, home_);
}

StatusOr<QueryExecution> Client::Poll(Cluster::ContinuousHandle handle,
                                      StreamTime end_ms, double deadline_ms) {
  ++stats_.polls;
  auto exec = cluster_->ExecuteContinuousAt(handle, end_ms, deadline_ms);
  if (exec.ok()) {
    stats_.total_latency_ms += exec->latency_ms();
    if (exec->deadline_expired) {
      ++stats_.deadline_expired;
    }
  }
  return exec;
}

std::vector<std::vector<std::string>> Client::Render(
    const QueryResult& result) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(result.rows.size());
  const StringServer& strings = *cluster_->strings();
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const ResultValue& v : row) {
      if (v.is_number) {
        cells.push_back(std::to_string(v.number));
      } else if (v.vid == kUnboundBinding) {
        cells.push_back("");  // Unmatched OPTIONAL variable.
      } else {
        auto s = strings.VertexString(v.vid);
        cells.push_back(s.ok() ? *s : "<?" + std::to_string(v.vid) + ">");
      }
    }
    out.push_back(std::move(cells));
  }
  return out;
}

}  // namespace wukongs
