// Background garbage collection (paper §4.1: "The GC thread will be
// periodically invoked in the background").
//
// The daemon periodically runs cluster maintenance — snapshot-marker
// collapse plus stream-index and transient-slice eviction — using a caller
// supplied horizon function ("the earliest stream time any registered window
// can still reach", typically newest time minus the largest window range).

#ifndef SRC_CLUSTER_MAINTENANCE_DAEMON_H_
#define SRC_CLUSTER_MAINTENANCE_DAEMON_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "src/cluster/cluster.h"
#include "src/testkit/schedule_controller.h"

namespace wukongs {

class MaintenanceDaemon {
 public:
  using HorizonFn = std::function<StreamTime()>;

  // `schedule` (optional, non-owning): a schedule fuzzer that jitters the
  // periodic wait so GC passes land at seeded-random points relative to
  // injection and queries, instead of only on the metronome.
  MaintenanceDaemon(Cluster* cluster, HorizonFn horizon,
                    std::chrono::milliseconds period,
                    testkit::ScheduleController* schedule = nullptr);
  ~MaintenanceDaemon();

  MaintenanceDaemon(const MaintenanceDaemon&) = delete;
  MaintenanceDaemon& operator=(const MaintenanceDaemon&) = delete;

  // Runs one maintenance pass immediately (also callable while running).
  void RunOnce();

  // Pressure hook: wakes the daemon thread for an immediate pass instead of
  // waiting out the period — wired to transient-budget exhaustion so GC
  // reacts to overload the moment it appears. Safe from any thread.
  void Kick();

  size_t passes() const { return passes_.load(std::memory_order_relaxed); }
  size_t kicks() const { return kicks_.load(std::memory_order_relaxed); }

 private:
  void Loop(std::chrono::milliseconds period);

  Cluster* cluster_;
  HorizonFn horizon_;
  testkit::ScheduleController* schedule_;
  std::atomic<size_t> passes_{0};
  std::atomic<size_t> kicks_{0};
  // Resolved from the cluster's registry at construction; null = obs off.
  obs::Counter* obs_passes_ = nullptr;
  obs::Counter* obs_kicks_ = nullptr;
  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool kicked_ = false;
  std::thread thread_;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_MAINTENANCE_DAEMON_H_
