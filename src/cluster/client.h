// Client library and proxy (paper §3, Fig. 5).
//
// "Each client contains a client library that can parse continuous and
// one-shot queries into a set of stored procedures, which will be
// immediately executed for one-shot queries or registered for continuous
// queries on the server side. Alternatively, Wukong+S can use a set of
// dedicated proxies to run the client-side library and balance client
// requests."
//
// Client parses query text once (interning every constant through the string
// server, so only IDs cross to the engine) and caches the parsed form — the
// "stored procedure". Repeated submissions of the same text skip parsing.
// Proxy hands out clients whose requests are balanced round-robin across the
// cluster's nodes.

#ifndef SRC_CLUSTER_CLIENT_H_
#define SRC_CLUSTER_CLIENT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"

namespace wukongs {

class Client {
 public:
  // `home` is the node this client's requests land on by default.
  Client(Cluster* cluster, NodeId home = 0);

  // Submits a one-shot query; parses (and caches) the text, executes it.
  // `deadline_ms` (0 = none) grants a latency budget carried end to end
  // (DESIGN.md §5.11); a budgeted query may come back with
  // deadline_expired set and a declared completeness fraction.
  StatusOr<QueryExecution> Submit(const std::string& text,
                                  double deadline_ms = 0.0);

  // Continuous query registration.
  StatusOr<Cluster::ContinuousHandle> Register(const std::string& text);

  // Executes a registered continuous query for the window ending at end_ms.
  // `deadline_ms` as in Submit — continuous triggers carry budgets too.
  StatusOr<QueryExecution> Poll(Cluster::ContinuousHandle handle,
                                StreamTime end_ms, double deadline_ms = 0.0);

  // Resolves a result's IDs back to strings for display.
  std::vector<std::vector<std::string>> Render(const QueryResult& result) const;

  struct Stats {
    size_t one_shot_queries = 0;
    size_t registrations = 0;
    size_t polls = 0;
    size_t procedure_cache_hits = 0;
    double total_latency_ms = 0.0;
    // Budgeted requests that came back partial because the budget ran out.
    size_t deadline_expired = 0;
  };
  const Stats& stats() const { return stats_; }
  NodeId home() const { return home_; }

 private:
  StatusOr<Query> Parse(const std::string& text);

  Cluster* cluster_;
  NodeId home_;
  std::unordered_map<std::string, Query> procedures_;  // Stored procedures.
  Stats stats_;
};

// Hands out clients balanced round-robin across nodes.
class Proxy {
 public:
  explicit Proxy(Cluster* cluster) : cluster_(cluster) {}

  Client NewClient() {
    NodeId home = next_home_;
    next_home_ = (next_home_ + 1) % cluster_->node_count();
    return Client(cluster_, home);
  }

 private:
  Cluster* cluster_;
  NodeId next_home_ = 0;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_CLIENT_H_
