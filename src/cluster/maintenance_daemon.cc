#include "src/cluster/maintenance_daemon.h"

namespace wukongs {

MaintenanceDaemon::MaintenanceDaemon(Cluster* cluster, HorizonFn horizon,
                                     std::chrono::milliseconds period,
                                     testkit::ScheduleController* schedule)
    : cluster_(cluster), horizon_(std::move(horizon)), schedule_(schedule) {
  if constexpr (obs::kCompiledIn) {
    if (obs::MetricsRegistry* m = cluster_->config().metrics; m != nullptr) {
      obs_passes_ = m->GetCounter("wukongs_maintenance_passes_total");
      obs_kicks_ = m->GetCounter("wukongs_maintenance_kicks_total");
    }
  }
  thread_ = std::thread([this, period] { Loop(period); });
}

MaintenanceDaemon::~MaintenanceDaemon() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void MaintenanceDaemon::RunOnce() {
  cluster_->RunMaintenance(horizon_());
  passes_.fetch_add(1, std::memory_order_relaxed);
  Bump(obs_passes_);
}

void MaintenanceDaemon::Kick() {
  {
    std::lock_guard lock(mu_);
    kicked_ = true;
  }
  kicks_.fetch_add(1, std::memory_order_relaxed);
  Bump(obs_kicks_);
  stop_cv_.notify_all();
}

void MaintenanceDaemon::Loop(std::chrono::milliseconds period) {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    std::chrono::milliseconds wait = period;
    if (schedule_ != nullptr) {
      wait += schedule_->MaintenanceJitter(period);
    }
    stop_cv_.wait_for(lock, wait, [this] { return stopping_ || kicked_; });
    if (stopping_) {
      return;
    }
    kicked_ = false;
    lock.unlock();
    RunOnce();
    lock.lock();
  }
}

}  // namespace wukongs
