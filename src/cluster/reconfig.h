// Online elastic reconfiguration (DESIGN.md §5.10).
//
// The paper's cluster is fixed-size: the hash partitioning of §4.2 is wired
// into every read and every injection. This module replaces that static
// assignment with a *versioned ownership map*: vertices hash into a fixed set
// of shards (initial_nodes * 16), shards map to nodes, and every change of
// the mapping bumps an **ownership epoch**. Executions snapshot the map as an
// immutable OwnershipView, so a query admitted under epoch E keeps routing by
// E for its whole lifetime even if a cutover lands mid-flight.
//
// The initial assignment is chosen so that `assign[shard] = shard % nodes`,
// which together with `shards % nodes == 0` makes
//     assign[hash % shards] == hash % nodes
// — bit-identical to the seed's OwnerOfVertex. Until the first move or
// membership change commits, views carry `identity = true` and readers take
// the legacy fast path (no per-vertex filtering).
//
// A shard moves in four steps (driven by ReconfigManager against a Cluster):
//   1. Begin   — pin the migration; from now on every injected batch is
//                *dual-applied*: the moving shard's partition also lands on
//                the target (same SN, same batch seq), keeping it in sync.
//   2. Copy    — base partition + checkpoint-log replay of batches delivered
//                before Begin, folded into the target via the migrated-append
//                path (GStore::InjectEdgeMigrated) so SN bookkeeping and the
//                StoredEpoch delta-cache guard stay undisturbed.
//   3. Cutover — once every delivered batch's plan SN is covered by
//                Stable_SN (the target's VTS has caught up and replayed
//                history is visible at or below any post-commit snapshot),
//                the epoch bumps atomically. Old-epoch executions keep
//                reading the source copy; new ones route to the target.
//   4. Rollback — a crash of either endpoint, or the target falling behind,
//                aborts the migration *without* touching the epoch; the
//                partial target copy stays invisible behind ownership
//                filtering, so no result is lost or duplicated.

#ifndef SRC_CLUSTER_RECONFIG_H_
#define SRC_CLUSTER_RECONFIG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/rdf/triple.h"

namespace wukongs {

class Cluster;

// Shards per *initial* node; the shard count is fixed at construction so the
// vertex -> shard hash never changes across membership changes.
inline constexpr uint32_t kShardsPerNode = 16;

// Immutable snapshot of the shard -> node assignment at one epoch. Cheap to
// share: executions hold a shared_ptr for their lifetime.
struct OwnershipView {
  uint64_t epoch = 0;
  uint32_t nodes = 1;
  uint32_t shards = kShardsPerNode;
  // True while the assignment is still `shard % nodes` AND no migration has
  // ever started: readers may use the legacy hash-mod-nodes path and skip
  // per-vertex ownership filtering.
  bool identity = true;
  std::shared_ptr<const std::vector<NodeId>> assign;

  uint32_t ShardOfVertex(VertexId v) const {
    return static_cast<uint32_t>(KeyHash{}(Key(v, 0, Dir::kOut)) % shards);
  }

  NodeId OwnerOfV(VertexId v) const {
    if (identity) {
      return static_cast<NodeId>(KeyHash{}(Key(v, 0, Dir::kOut)) % nodes);
    }
    return (*assign)[ShardOfVertex(v)];
  }
};

// The mutable, versioned ownership map. All mutation goes through the
// Cluster (commit of a migration, AddNode); readers snapshot with View().
class ShardMap {
 public:
  explicit ShardMap(uint32_t nodes);

  std::shared_ptr<const OwnershipView> View() const;
  uint64_t epoch() const;
  uint32_t shard_count() const;
  uint32_t node_count() const;
  NodeId OwnerOfShard(uint32_t shard) const;
  std::vector<uint32_t> ShardsOwnedBy(NodeId node) const;
  uint32_t ShardOfVertex(VertexId v) const;

  // Drops the identity fast path (forcing per-vertex ownership filtering on
  // reads) without bumping the epoch. Called at migration Begin so partial
  // target copies are invisible even if the first-ever migration aborts.
  void MarkDirty();

  // Atomic cutover: reassigns `shard` to `target` and bumps the epoch.
  Status CommitMove(uint32_t shard, NodeId target);

  // Grows membership by one node and bumps the epoch. The new node owns no
  // shards until moves land on it.
  NodeId AddNode();

 private:
  std::shared_ptr<const OwnershipView> MutableCloneLocked() const;

  mutable std::mutex mu_;
  std::shared_ptr<const OwnershipView> view_;
};

// One reconfiguration operation's outcome.
struct ReconfigReport {
  std::vector<uint32_t> shards_moved;
  size_t shards_remaining = 0;  // DrainNode: shards still on the node.
  size_t batches_replayed = 0;
  size_t edges_copied = 0;
  // True when the transfer finished but the epoch bump is deferred until
  // Stable_SN covers the delivered frontier; the cluster commits it
  // automatically from the feed path.
  bool commit_pending = false;
};

// Drives live shard handoffs using the checkpoint log for history replay,
// mirroring RecoveryManager's shape. All calls run on the feed thread (the
// same single-threaded discipline as FeedStream/AdvanceStreams).
class ReconfigManager {
 public:
  // `checkpoint_path` may be empty when no batch history needs replay (e.g.
  // a cluster whose streams started after Begin); otherwise it must name the
  // log wired into Cluster::SetBatchLogger.
  explicit ReconfigManager(std::string checkpoint_path);

  // Moves one shard to `target` live: Begin, copy the base partition, replay
  // logged batches delivered before Begin, then finish (commit or defer).
  StatusOr<ReconfigReport> MoveShard(Cluster* cluster, uint32_t shard,
                                     NodeId target,
                                     std::span<const Triple> base_triples);

  // Drains every shard off `node`, round-robining targets over the remaining
  // serving, non-draining nodes. Each move is sequential (one migration in
  // flight at a time); if a commit defers, draining stops early and
  // `shards_remaining` reports what is left — feed more batches and call
  // again.
  StatusOr<ReconfigReport> DrainNode(Cluster* cluster, NodeId node,
                                     std::span<const Triple> base_triples);

 private:
  std::string checkpoint_path_;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_RECONFIG_H_
