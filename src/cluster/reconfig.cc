#include "src/cluster/reconfig.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/cluster/cluster.h"
#include "src/stream/checkpoint.h"

namespace wukongs {

// --- ShardMap -------------------------------------------------------------

ShardMap::ShardMap(uint32_t nodes) {
  assert(nodes > 0);
  auto view = std::make_shared<OwnershipView>();
  view->epoch = 0;
  view->nodes = nodes;
  view->shards = nodes * kShardsPerNode;
  view->identity = true;
  auto assign = std::make_shared<std::vector<NodeId>>(view->shards);
  for (uint32_t s = 0; s < view->shards; ++s) {
    (*assign)[s] = static_cast<NodeId>(s % nodes);
  }
  view->assign = std::move(assign);
  view_ = std::move(view);
}

std::shared_ptr<const OwnershipView> ShardMap::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

uint64_t ShardMap::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_->epoch;
}

uint32_t ShardMap::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_->shards;
}

uint32_t ShardMap::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_->nodes;
}

NodeId ShardMap::OwnerOfShard(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(shard < view_->shards);
  return (*view_->assign)[shard];
}

std::vector<uint32_t> ShardMap::ShardsOwnedBy(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> owned;
  for (uint32_t s = 0; s < view_->shards; ++s) {
    if ((*view_->assign)[s] == node) {
      owned.push_back(s);
    }
  }
  return owned;
}

uint32_t ShardMap::ShardOfVertex(VertexId v) const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_->ShardOfVertex(v);
}

std::shared_ptr<const OwnershipView> ShardMap::MutableCloneLocked() const {
  auto next = std::make_shared<OwnershipView>(*view_);
  return next;
}

void ShardMap::MarkDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!view_->identity) {
    return;
  }
  auto next = std::make_shared<OwnershipView>(*view_);
  next->identity = false;  // Same assignment, same epoch — just no fast path.
  view_ = std::move(next);
}

Status ShardMap::CommitMove(uint32_t shard, NodeId target) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= view_->shards) {
    return Status::NotFound("unknown shard");
  }
  if (target >= view_->nodes) {
    return Status::NotFound("unknown target node");
  }
  auto next = std::make_shared<OwnershipView>(*view_);
  auto assign = std::make_shared<std::vector<NodeId>>(*view_->assign);
  (*assign)[shard] = target;
  next->assign = std::move(assign);
  next->identity = false;
  ++next->epoch;
  view_ = std::move(next);
  return Status::Ok();
}

NodeId ShardMap::AddNode() {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = std::make_shared<OwnershipView>(*view_);
  NodeId id = static_cast<NodeId>(next->nodes);
  ++next->nodes;
  next->identity = false;  // hash % nodes would now disagree with assign.
  ++next->epoch;
  view_ = std::move(next);
  return id;
}

// --- ReconfigManager ------------------------------------------------------

ReconfigManager::ReconfigManager(std::string checkpoint_path)
    : checkpoint_path_(std::move(checkpoint_path)) {}

StatusOr<ReconfigReport> ReconfigManager::MoveShard(
    Cluster* cluster, uint32_t shard, NodeId target,
    std::span<const Triple> base_triples) {
  Status begin = cluster->BeginShardMove(shard, target);
  if (!begin.ok()) {
    return begin;
  }
  ReconfigReport report;

  Status base = cluster->LoadBaseForShard(base_triples);
  if (!base.ok()) {
    (void)cluster->AbortShardMove("base copy failed: " + base.ToString());
    return base;
  }

  if (!checkpoint_path_.empty()) {
    auto batches = ReadCheckpointLog(checkpoint_path_);
    if (!batches.ok()) {
      (void)cluster->AbortShardMove("checkpoint log unreadable: " +
                                    batches.status().ToString());
      return batches.status();
    }
    for (const StreamBatch& batch : *batches) {
      if (!cluster->MigrationPending()) {
        // A crash event woven into replay aborted the handoff underneath us.
        return Status::FailedPrecondition(
            "migration aborted during history replay");
      }
      Status replayed = cluster->ReplayBatchForShard(batch);
      if (!replayed.ok()) {
        (void)cluster->AbortShardMove("history replay failed: " +
                                      replayed.ToString());
        return replayed;
      }
      ++report.batches_replayed;
    }
  }

  Status finish = cluster->FinishShardTransfer();
  if (!finish.ok()) {
    return finish;
  }
  report.shards_moved.push_back(shard);
  report.edges_copied = cluster->reconfig_stats().edges_copied;
  report.commit_pending = cluster->MigrationPending();
  return report;
}

StatusOr<ReconfigReport> ReconfigManager::DrainNode(
    Cluster* cluster, NodeId node, std::span<const Triple> base_triples) {
  Status drain = cluster->BeginDrain(node);
  if (!drain.ok() && drain.code() != StatusCode::kAlreadyExists) {
    return drain;
  }

  // Round-robin targets over the serving, non-draining survivors.
  std::vector<NodeId> targets;
  for (NodeId n = 0; n < cluster->config().nodes; ++n) {
    if (n != node && cluster->NodeServing(n) && !cluster->IsDraining(n)) {
      targets.push_back(n);
    }
  }
  if (targets.empty()) {
    return Status::FailedPrecondition("no serving node left to drain into");
  }

  ReconfigReport report;
  std::vector<uint32_t> owned = cluster->ShardsOwnedBy(node);
  size_t rr = 0;
  for (uint32_t shard : owned) {
    if (cluster->MigrationPending()) {
      break;  // Previous move's cutover still deferred; one at a time.
    }
    auto moved =
        MoveShard(cluster, shard, targets[rr++ % targets.size()], base_triples);
    if (!moved.ok()) {
      return moved.status();
    }
    report.batches_replayed += moved->batches_replayed;
    if (moved->commit_pending) {
      report.commit_pending = true;
      break;
    }
    report.shards_moved.push_back(shard);
  }
  report.edges_copied = cluster->reconfig_stats().edges_copied;
  report.shards_remaining = cluster->ShardsOwnedBy(node).size();
  return report;
}

}  // namespace wukongs
