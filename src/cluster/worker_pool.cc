#include "src/cluster/worker_pool.h"

#include <algorithm>

namespace wukongs {

WorkerPool::WorkerPool(Cluster* cluster, uint32_t threads,
                       testkit::ScheduleController* schedule)
    : cluster_(cluster), schedule_(schedule) {
  if constexpr (obs::kCompiledIn) {
    if (obs::MetricsRegistry* m = cluster_->config().metrics; m != nullptr) {
      obs_submitted_ = m->GetCounter("wukongs_pool_tasks_submitted_total");
      obs_executed_ = m->GetCounter("wukongs_pool_tasks_executed_total");
      obs_rejected_ = m->GetCounter("wukongs_query_rejections_total");
      obs_rejected_concurrency_ =
          m->GetCounter(obs::MetricsRegistry::Labeled(
              "wukongs_query_rejections_by_reason_total",
              {{"reason", "concurrency"}}));
      obs_rejected_deadline_ = m->GetCounter(obs::MetricsRegistry::Labeled(
          "wukongs_query_rejections_by_reason_total",
          {{"reason", "deadline"}}));
    }
  }
  workers_.reserve(std::max(threads, 1u));
  for (uint32_t t = 0; t < std::max(threads, 1u); ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

std::future<StatusOr<QueryExecution>> WorkerPool::SubmitContinuous(
    Cluster::ContinuousHandle handle, StreamTime end_ms, double deadline_ms) {
  Bump(obs_submitted_);
  std::packaged_task<StatusOr<QueryExecution>()> task(
      [this, handle, end_ms, deadline_ms] {
        return cluster_->ExecuteContinuousAt(handle, end_ms, deadline_ms);
      });
  auto future = task.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return future;
}

void WorkerPool::SetAdmissionController(AdmissionController* admission) {
  admission_ = admission;
}

std::future<StatusOr<QueryExecution>> WorkerPool::SubmitOneShot(Query query,
                                                                NodeId home,
                                                                double deadline_ms) {
  if (admission_ != nullptr) {
    AdmissionRejection rejection;
    Status verdict = admission_->Admit(deadline_ms, &rejection);
    if (!verdict.ok()) {
      Bump(obs_rejected_);
      Bump(rejection.reason == AdmissionRejection::Reason::kDeadline
               ? obs_rejected_deadline_
               : obs_rejected_concurrency_);
      // Fast rejection: the future is ready before the caller even waits —
      // no worker slot, no queue residency. The status carries a
      // retry_after_ms hint derived from the controller's wait estimate.
      std::promise<StatusOr<QueryExecution>> rejected;
      rejected.set_value(StatusOr<QueryExecution>(std::move(verdict)));
      return rejected.get_future();
    }
  }
  Bump(obs_submitted_);
  std::packaged_task<StatusOr<QueryExecution>()> task(
      [this, q = std::move(query), home, deadline_ms] {
        auto exec = cluster_->OneShotParsed(q, home, deadline_ms);
        if (admission_ != nullptr) {
          admission_->Complete(exec.ok() ? exec->latency_ms() : 0.0);
        }
        return exec;
      });
  auto future = task.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
  return future;
}

size_t WorkerPool::Pending() const {
  std::lock_guard lock(mu_);
  return queue_.size() + in_flight_;
}

void WorkerPool::Drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::packaged_task<StatusOr<QueryExecution>()> task;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Stopping and nothing left to do.
      }
      size_t pick = schedule_ != nullptr ? schedule_->PickIndex(queue_.size()) : 0;
      task = std::move(queue_[pick]);
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(pick));
      ++in_flight_;
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_executed_);
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        drained_.notify_all();
      }
    }
  }
}

}  // namespace wukongs
