#include "src/cluster/sources.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wukongs {
namespace {

constexpr size_t kEdgeBytes = sizeof(VertexId);

// Shared retry-charged read for both sources. Returns false only when a
// retry policy is attached and every attempt failed.
bool ChargeReadWithRetry(Fabric* fabric, NodeId home, NodeId n, size_t bytes,
                         const RetryPolicy* retry, DegradeState* degrade) {
  if (retry == nullptr) {
    fabric->OneSidedRead(home, n, bytes);
    if (degrade != nullptr) {
      ++degrade->reads_ok;
    }
    return true;
  }
  Status s = RunWithRetry(
      *retry, [&] { return fabric->TryOneSidedRead(home, n, bytes); },
      degrade != nullptr ? &degrade->retry : nullptr);
  if (!s.ok()) {
    if (degrade != nullptr) {
      degrade->partial = true;
      if (s.code() == StatusCode::kDeadlineExceeded) {
        // Budget exhausted: the read was cancelled before issue, and every
        // later read in this execution will be too (SimCost only grows).
        degrade->deadline_expired = true;
        ++degrade->deadline_skipped_reads;
      }
    }
    return false;
  }
  if (degrade != nullptr) {
    ++degrade->reads_ok;
  }
  return true;
}

// Routes a vertex to its owner: by the execution's ownership view when one
// is attached, else by the legacy hash partitioning (bit-identical to an
// identity view).
NodeId OwnerFor(const OwnershipView* view, VertexId vid, size_t nodes) {
  return view != nullptr ? view->OwnerOfV(vid)
                         : OwnerOfVertex(vid, static_cast<uint32_t>(nodes));
}

// Drops vids in [from, end) that the view does not assign to node `n`. This
// is the exactly-once half of live migration: both endpoints of a pending
// handoff hold copies of the moving shard (and the source keeps its copy
// after cutover — reclamation is deferred), so index-key unions must serve
// each vertex from its view-owner only. No-op on identity views.
void FilterOwned(const OwnershipView* view, NodeId n, std::vector<VertexId>* v,
                 size_t from) {
  if (view == nullptr || view->identity) {
    return;
  }
  v->erase(std::remove_if(v->begin() + static_cast<long>(from), v->end(),
                          [&](VertexId vid) { return view->OwnerOfV(vid) != n; }),
           v->end());
}

}  // namespace

StoreSource::StoreSource(const std::vector<GStore*>& shards, Fabric* fabric,
                         NodeId home, SnapshotNum snapshot, ChargePolicy policy,
                         const RetryPolicy* retry, DegradeState* degrade,
                         std::shared_ptr<const OwnershipView> view)
    : shards_(shards),
      fabric_(fabric),
      home_(home),
      snapshot_(snapshot),
      policy_(policy),
      retry_(retry),
      degrade_(degrade),
      view_(std::move(view)) {}

void StoreSource::GetNeighbors(Key key, std::vector<VertexId>* out) const {
  if (key.is_index()) {
    // Index keys are partitioned: union every node's local portion.
    std::vector<VertexId> tmp;
    for (NodeId n = 0; n < shards_.size(); ++n) {
      if (!fabric_->node_serving(n)) {
        // Quarantined shard: its portion is unavailable; serve the rest.
        if (degrade_ != nullptr) {
          degrade_->partial = true;
          ++degrade_->skipped_shards;
        }
        continue;
      }
      tmp.clear();
      shards_[n]->GetEdgesInto(key, snapshot_, &tmp);
      FilterOwned(view_.get(), n, &tmp, 0);
      if (policy_ == ChargePolicy::kInPlace && !tmp.empty()) {
        if (!ChargeReadWithRetry(fabric_, home_, n, tmp.size() * kEdgeBytes + 16,
                                 retry_, degrade_)) {
          continue;  // Read never completed: the span did not arrive.
        }
      }
      out->insert(out->end(), tmp.begin(), tmp.end());
    }
    return;
  }
  NodeId owner = OwnerFor(view_.get(), key.vid(), shards_.size());
  if (!fabric_->node_serving(owner)) {
    if (degrade_ != nullptr) {
      degrade_->partial = true;
      ++degrade_->skipped_shards;
    }
    return;
  }
  size_t before = out->size();
  std::vector<VertexId> tmp;
  shards_[owner]->GetEdgesInto(key, snapshot_, &tmp);
  out->insert(out->end(), tmp.begin(), tmp.end());
  if (policy_ == ChargePolicy::kInPlace) {
    if (!ChargeReadWithRetry(fabric_, home_, owner,
                             (out->size() - before) * kEdgeBytes + 16, retry_,
                             degrade_)) {
      out->resize(before);
    }
  }
}

size_t StoreSource::EstimateCount(Key key) const {
  if (key.is_index()) {
    size_t n = 0;
    for (NodeId node = 0; node < shards_.size(); ++node) {
      if (!fabric_->node_serving(node)) {
        continue;
      }
      n += shards_[node]->EdgeCount(key, snapshot_);
    }
    // During a handoff both endpoints count the moving shard; acceptable for
    // selectivity estimation (never for results, which filter by owner).
    return n;
  }
  NodeId owner = OwnerFor(view_.get(), key.vid(), shards_.size());
  if (!fabric_->node_serving(owner)) {
    return 0;
  }
  return shards_[owner]->EdgeCount(key, snapshot_);
}

WindowSource::WindowSource(const std::vector<GStore*>& shards,
                           const std::vector<StreamIndex*>& indexes,
                           const std::vector<TransientStore*>& transients,
                           Fabric* fabric, NodeId home, BatchRange range,
                           ChargePolicy policy, bool local_index,
                           const RetryPolicy* retry, DegradeState* degrade,
                           std::shared_ptr<const OwnershipView> view)
    : shards_(shards),
      indexes_(indexes),
      transients_(transients),
      fabric_(fabric),
      home_(home),
      range_(range),
      policy_(policy),
      local_index_(local_index),
      retry_(retry),
      degrade_(degrade),
      view_(std::move(view)) {
  assert(shards_.size() == indexes_.size());
  assert(shards_.size() == transients_.size());
}

bool WindowSource::ChargeRead(NodeId n, size_t bytes) const {
  return ChargeReadWithRetry(fabric_, home_, n, bytes, retry_, degrade_);
}

void WindowSource::CollectFromNode(NodeId n, Key key,
                                   std::vector<VertexId>* out) const {
  if (!fabric_->node_serving(n)) {
    if (degrade_ != nullptr) {
      degrade_->partial = true;
      ++degrade_->skipped_shards;
    }
    return;
  }
  size_t before = out->size();
  std::vector<IndexSpan> spans;
  for (BatchSeq b = range_.lo; b <= range_.hi; ++b) {
    // Stream-index lookup: local (the index is replicated to the querying
    // node), so only the data read below is charged.
    spans.clear();
    if (indexes_[n]->GetSpans(b, key, &spans)) {
      for (const IndexSpan& s : spans) {
        shards_[n]->GetSpanInto(key, s.start, s.count, out);
      }
    }
    // Timing data of this batch lives in node n's transient slice.
    transients_[n]->GetNeighbors(b, key, out);
  }
  size_t added = out->size() - before;
  if (policy_ == ChargePolicy::kInPlace && added > 0) {
    // One one-sided read fetches the value span; the locally-replicated
    // stream index saved the key-lookup round trip (paper §5).
    if (!ChargeRead(n, added * kEdgeBytes + 16)) {
      out->resize(before);
    }
  }
}

void WindowSource::GetNeighbors(Key key, std::vector<VertexId>* out) const {
  if (range_.empty) {
    return;
  }
  if (key.is_index()) {
    // Window analogue of the index vertex: every vertex that touched this
    // (pid, dir) inside the window. Seeds come from the stream index
    // (timeless data) and the transient slices' per-slice index entries
    // (timing data); a vertex active in several batches appears once.
    std::vector<VertexId> raw;
    for (NodeId n = 0; n < shards_.size(); ++n) {
      if (!fabric_->node_serving(n)) {
        if (degrade_ != nullptr) {
          degrade_->partial = true;
          ++degrade_->skipped_shards;
        }
        continue;
      }
      size_t before = raw.size();
      for (BatchSeq b = range_.lo; b <= range_.hi; ++b) {
        indexes_[n]->GetSeeds(b, key.pid(), key.dir(), &raw);
        transients_[n]->GetNeighbors(b, key, &raw);
      }
      FilterOwned(view_.get(), n, &raw, before);
      size_t added = raw.size() - before;
      if (policy_ == ChargePolicy::kInPlace && added > 0) {
        bool ok = ChargeRead(n, added * kEdgeBytes + 16);
        if (ok && !local_index_) {
          ok = ChargeRead(n, 32);
        }
        if (!ok) {
          raw.resize(before);
        }
      }
    }
    std::sort(raw.begin(), raw.end());
    raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
    out->insert(out->end(), raw.begin(), raw.end());
    return;
  }
  NodeId owner = OwnerFor(view_.get(), key.vid(), shards_.size());
  CollectFromNode(owner, key, out);
}

size_t WindowSource::EstimateCount(Key key) const {
  if (range_.empty) {
    return 0;
  }
  size_t n = 0;
  if (key.is_index()) {
    for (NodeId node = 0; node < shards_.size(); ++node) {
      if (!fabric_->node_serving(node)) {
        continue;
      }
      for (BatchSeq b = range_.lo; b <= range_.hi; ++b) {
        n += indexes_[node]->SeedCount(b, key.pid(), key.dir());
        n += transients_[node]->EdgeCount(b, key);
      }
    }
    return n;
  }
  NodeId owner = OwnerFor(view_.get(), key.vid(), shards_.size());
  if (!fabric_->node_serving(owner)) {
    return 0;
  }
  for (BatchSeq b = range_.lo; b <= range_.hi; ++b) {
    n += indexes_[owner]->SpanEdgeCount(b, key);
    n += transients_[owner]->EdgeCount(b, key);
  }
  return n;
}

}  // namespace wukongs
