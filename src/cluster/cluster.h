// Cluster: the public entry point of the Wukong+S reproduction.
//
// A Cluster owns N simulated nodes (store shards, per-stream transient
// stores and stream indexes), the string server, the simulated RDMA fabric,
// and the Coordinator. It implements the paper's execution flow (Fig. 5):
// streams flow through Adaptor -> Dispatcher -> Injectors into the hybrid
// store; continuous queries trigger off stable vector timestamps; one-shot
// queries read a consistent snapshot through bounded snapshot scalarization.
//
// Time is logical: callers feed tuples carrying stream timestamps and drive
// window execution explicitly, which keeps every experiment deterministic.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/cluster/hedge.h"
#include "src/cluster/sources.h"
#include "src/common/histogram.h"
#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/engine/delta_cache.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/engine/executor.h"
#include "src/fault/fault_injector.h"
#include "src/overload/load_shedder.h"
#include "src/overload/overload_config.h"
#include "src/overload/phi_accrual.h"
#include "src/overload/straggler_detector.h"
#include "src/rdf/string_server.h"
#include "src/rdf/triple.h"
#include "src/rdma/fabric.h"
#include "src/sparql/parser.h"
#include "src/sparql/plan_pin.h"
#include "src/store/gstore.h"
#include "src/store/planner.h"
#include "src/store/stream_stats.h"
#include "src/stream/adaptor.h"
#include "src/stream/coordinator.h"
#include "src/stream/stream_index.h"
#include "src/stream/transient_store.h"

namespace wukongs {

class UpstreamBuffer;

namespace testkit {
class ScheduleController;
}  // namespace testkit

// Multi-query optimization for templated continuous queries (DESIGN.md
// §5.12). Registrations whose parsed queries canonicalize to the same
// template signature (same shape, different user constant) form a group; a
// trigger evaluates the group's shared probe query once and hash-partitions
// the bindings back to members. Enabled by default, but a group only engages
// once it holds `min_group_size` members — singleton registrations execute
// byte-identically to a cluster without MQO.
struct MqoConfig {
  bool enabled = true;
  size_t min_group_size = 2;
};

// End-to-end latency budgets (DESIGN.md §5.11). Off by default — a
// default-constructed config enforces nothing, byte-identical to the seed.
struct DeadlineConfig {
  bool enforce = false;  // Master switch for budget enforcement.
  // Budget granted when the caller passes none (0 = such queries run
  // unbounded; only explicitly budgeted queries are enforced).
  double default_budget_ms = 0.0;
};

struct ClusterConfig {
  uint32_t nodes = 1;
  Transport transport = Transport::kRdma;
  NetworkModel network;

  uint64_t batch_interval_ms = kDefaultBatchIntervalMs;
  size_t reserved_snapshots = 2;
  uint64_t batches_per_sn = 1;
  size_t transient_budget_bytes = 0;  // 0 = unbounded ring buffers.

  // Per-node worker threads for continuous queries; the paper dedicates 16.
  // Used by throughput modeling, not by execution itself.
  uint32_t workers_per_node = 16;

  // Fork-join parallel speedup = nodes^exponent (paper Fig. 12 shows ~3x
  // from 2 to 8 nodes, i.e. exponent ~0.8).
  double fork_join_parallel_exponent = 0.8;

  // Forces fork-join for every query; used with Transport::kTcp to model the
  // paper's Non-RDMA configuration (Table 5).
  bool force_fork_join = false;
  // Forces in-place execution for every query (ablation: why the engine
  // picks fork-join for non-selective queries).
  bool force_in_place = false;

  // Delta caching for continuous queries (§5.9): eligible registrations
  // (exactly one sliding-window pattern, no UNION/LIMIT, no window pattern
  // inside an OPTIONAL) memoize per-slice contributions across triggers and
  // re-evaluate only the delta batches — O(delta) instead of O(window).
  // Results are bag-identical to cold re-execution; row order may differ.
  bool delta_cache_enabled = true;

  // Executor pipeline selector (DESIGN.md §5.13). On (default), intermediate
  // results are column-major ColumnarTables with batched scan-join kernels;
  // off runs the legacy row-major pipeline. Projected results are
  // byte-identical — the differential harness runs a row-mode twin cluster
  // against the columnar one on every seed to prove it.
  bool columnar_executor = true;

  // Locality-aware partitioning of the stream index (paper §4.2, Fig. 9):
  // replicate a stream's index to nodes whose registered queries consume it.
  // Disabling it (ablation) makes every remote window lookup pay an extra
  // one-sided read for the index itself — the cost Fig. 9 is designed away.
  bool locality_aware_index = true;

  // Fault injection (non-owning; must outlive the cluster). When set, batch
  // delivery, fabric verbs, and scheduled crashes follow its seeded schedule.
  FaultInjector* fault_injector = nullptr;
  // Retry/backoff applied to fallible fabric operations (in-place reads,
  // dispatcher shipping); backoff is charged into SimCost so degraded-mode
  // latency shows up in measured query latency.
  RetryPolicy retry;

  // Overload protection (§5.6): credit backpressure, load shedding, plan-
  // extension caps and the phi-accrual failure detector. All defaults off —
  // a default-constructed config behaves exactly like the seed.
  OverloadConfig overload;

  // Shared template-group evaluation for continuous queries (§5.12).
  MqoConfig mqo;

  // Tail robustness (§5.11): latency budgets, hedged fork-join sub-queries
  // and gray-failure (straggler) demotion. All defaults off.
  DeadlineConfig deadline;
  HedgeConfig hedge;
  StragglerConfig straggler;

  // Adaptive cost-based re-planning from live stream statistics (§5.14).
  // Off by default: registered plans then keep the plan-once stored-procedure
  // lifecycle, byte-identical to earlier releases. When enabled, every
  // min_triggers_between triggers of a registration the cluster compares the
  // plan's statistics snapshot against a fresh one; on drift it synthesizes a
  // candidate plan and cuts over only after a shadow parity check.
  ReplanPolicy replan;

  // Schedule fuzzing (non-owning; must outlive the cluster). When set,
  // AdvanceStreams lets it permute cross-stream batch delivery order; the
  // MaintenanceDaemon and WorkerPool accept the same controller for timing
  // and dequeue-order decisions. Null = deterministic seed behavior.
  testkit::ScheduleController* schedule = nullptr;

  // Observability (§5.8; non-owning, must outlive the cluster). Null is the
  // runtime kill switch: every wiring site guards on it, hot paths resolve
  // metric handles once at construction, and a default-constructed config
  // behaves exactly like the seed.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Outcome of one query execution with its modeled cost breakdown.
struct QueryExecution {
  QueryResult result;
  double cpu_ms = 0.0;   // Measured compute time (scaled if fork-join).
  double net_ms = 0.0;   // Modeled network / fabric time.
  bool fork_join = false;
  SnapshotNum snapshot = 0;
  StreamTime window_end_ms = 0;  // Continuous executions only.

  // Degraded-mode surface: partial means some quarantined shard's data could
  // not be served — the result is usable but may be incomplete (a Status-like
  // signal instead of a crash). Retry accounting makes the price of riding
  // through transient faults visible per execution.
  bool partial = false;
  uint64_t skipped_shards = 0;
  uint64_t fault_retries = 0;
  double backoff_ms = 0.0;
  // Fraction of the windows' timing edges shed (door) or lost (injector);
  // 0 on a loss-free execution. The overload analogue of `partial`. Both
  // values are threaded through the fork-join merge (ExecuteUnion) so the
  // client sees loss accounting on every path, and the absolute edge count
  // lets it audit the fraction against the shed ledger.
  double shed_fraction = 0.0;
  uint64_t timing_edges_lost = 0;

  // Delta-cache surface (§5.9): set when the trigger ran the delta pipeline.
  bool delta = false;
  uint64_t delta_slices_cached = 0;  // Window slices served from the cache.
  uint64_t delta_slices_fresh = 0;   // Slices evaluated this trigger.

  // Ownership epoch the execution was admitted under (DESIGN.md §5.10): all
  // of its reads route by this epoch's shard map, even if a migration commits
  // mid-flight.
  uint64_t ownership_epoch = 0;

  // Tail-robustness surface (§5.11). `deadline_expired` means the latency
  // budget ran out mid-execution and remaining remote work was cancelled;
  // the result is then a sound subset of the full answer. `completeness` is
  // the declared lower-bound fraction of the full answer the result covers:
  // 1.0 on a healthy run, (served / attempted work) x (1 - shed_fraction)
  // when budget or loss degraded it.
  bool deadline_expired = false;
  uint64_t deadline_skipped_reads = 0;
  double completeness = 1.0;
  // Hedged fork-join sub-requests this execution issued / that beat their
  // primary (the loser of each pair is cancelled and deduplicated).
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;

  double latency_ms() const { return cpu_ms + net_ms; }
};

class Cluster {
 public:
  using ContinuousHandle = uint64_t;

  // `shared_strings` (optional) lets several engines — e.g. the integrated
  // system and a composite baseline's static store — agree on vertex IDs.
  // The pointee must outlive the cluster.
  explicit Cluster(const ClusterConfig& config,
                   StringServer* shared_strings = nullptr);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  StringServer* strings() { return strings_; }
  const StringServer& strings() const { return *strings_; }
  Fabric* fabric() { return fabric_.get(); }
  Coordinator* coordinator() { return coordinator_.get(); }
  GStore* store(NodeId n) { return stores_raw_[n]; }
  uint32_t node_count() const { return config_.nodes; }
  // Current-epoch owner of a vertex (identical to OwnerOfVertex until the
  // first committed reconfiguration).
  NodeId OwnerOf(VertexId v) const { return shard_map_.View()->OwnerOfV(v); }

  // --- Streams. ---
  // Declares a stream; `timing_predicates` name predicates whose tuples are
  // timing data (GPS-style), kept only in the transient store. Higher
  // `shed_priority` sheds later under pressure (overload.shed policy).
  StatusOr<StreamId> DefineStream(const std::string& name,
                                  const std::vector<std::string>& timing_predicates = {},
                                  int shed_priority = 0);
  StatusOr<StreamId> FindStream(const std::string& name) const;

  // --- Data. ---
  void LoadBase(std::span<const Triple> triples);
  // Feeds in-order tuples into a stream; completed mini-batches are
  // dispatched and injected immediately.
  Status FeedStream(StreamId stream, const StreamTupleVec& tuples);
  // Advances every stream's logical clock, flushing (possibly empty) batches
  // up to `now_ms` so vector timestamps progress on idle streams.
  void AdvanceStreams(StreamTime now_ms);

  // --- One-shot queries (read-only snapshot transactions, §4.3). ---
  // `deadline_ms` grants the execution a latency budget in modeled
  // milliseconds (0 = config_.deadline.default_budget_ms, which defaults to
  // unbounded). Enforcement requires config_.deadline.enforce; an exhausted
  // budget cancels remaining remote work and returns a partial result with
  // a declared completeness fraction.
  StatusOr<QueryExecution> OneShot(std::string_view text, NodeId home = 0,
                                   double deadline_ms = 0.0);
  StatusOr<QueryExecution> OneShotParsed(const Query& q, NodeId home = 0,
                                         double deadline_ms = 0.0);

  // --- Continuous queries. ---
  StatusOr<ContinuousHandle> RegisterContinuous(std::string_view text,
                                                NodeId home = 0);
  StatusOr<ContinuousHandle> RegisterContinuousParsed(const Query& q,
                                                      NodeId home = 0);
  const Query& ContinuousQueryOf(ContinuousHandle h) const;
  // True when Stable_VTS covers every window ending at `end_ms` (the
  // data-driven trigger condition, Fig. 10).
  bool WindowReady(ContinuousHandle h, StreamTime end_ms) const;
  // Executes the registered query with windows ending at `end_ms`. Fails
  // with FailedPrecondition if the trigger condition does not hold.
  // `deadline_ms` as in OneShot (continuous triggers carry budgets too).
  StatusOr<QueryExecution> ExecuteContinuousAt(ContinuousHandle h,
                                               StreamTime end_ms,
                                               double deadline_ms = 0.0);
  // Cold re-execution: same query, same cached plan, delta cache bypassed
  // (neither read nor written) and the continuous-query counter untouched.
  // The differential harness uses it as the delta parity baseline.
  StatusOr<QueryExecution> ExecuteContinuousColdAt(ContinuousHandle h,
                                                   StreamTime end_ms);
  // Delta-cache introspection (§5.9). Stats/EntryCount are zero when the
  // registration is ineligible (no cache attached).
  bool HasDeltaCache(ContinuousHandle h) const;
  DeltaCache::Stats DeltaStatsOf(ContinuousHandle h) const;
  size_t DeltaEntryCountOf(ContinuousHandle h) const;

  // Removes a continuous registration: its triggers fail with NotFound from
  // now on, its delta cache detaches, and it leaves its template group (the
  // last member leaving dissolves the group and its per-group cache).
  // Handles are never reused.
  Status UnregisterContinuous(ContinuousHandle h);
  bool ContinuousActive(ContinuousHandle h) const;

  // --- Template-group introspection (§5.12). ---
  struct MqoStats {
    uint64_t grouped_registrations = 0;  // Registrations that joined a group.
    uint64_t groups_formed = 0;
    uint64_t groups_dissolved = 0;
    uint64_t shared_evals = 0;        // Probe evaluations (one per group+trigger).
    uint64_t fanout_served = 0;       // Member triggers served from a memo.
    uint64_t independent_fallbacks = 0;  // Grouped triggers that split back.
  };
  MqoStats mqo_stats() const;
  // Group of a registration (-1 = ungrouped / dissolved-away), its current
  // member count, live group count, and whether the group's shared probe
  // carries a per-group DeltaCache.
  int MqoGroupOf(ContinuousHandle h) const;
  size_t MqoGroupSizeOf(ContinuousHandle h) const;
  size_t MqoLiveGroups() const;
  bool MqoGroupHasDeltaCache(ContinuousHandle h) const;

  // --- Adaptive re-planning & plan pinning (§5.14). ---
  struct ReplanStats {
    uint64_t checks = 0;           // Drift evaluations (cadence gate passed).
    uint64_t drift_triggers = 0;   // Checks whose drift cleared the factor.
    uint64_t cutovers = 0;         // Parity-verified plan swaps installed.
    uint64_t parity_failures = 0;  // Candidates the shadow check rejected.
    uint64_t budget_overruns = 0;  // Shadow checks abandoned over budget.
    uint64_t pins = 0;             // Plans installed via PinContinuousPlan.
  };
  ReplanStats replan_stats() const;
  // Current plan order of a registration (empty until its first trigger
  // plans it) and the plan's version (0 until planned; cutovers and pins
  // advance it).
  std::vector<int> ContinuousPlanOf(ContinuousHandle h) const;
  uint64_t PlanVersionOf(ContinuousHandle h) const;
  // Installs a manual plan pin: validates the order against the registered
  // query's pattern count, derives selectivity unless the pin overrides it,
  // re-keys the delta cache and MQO memos coherently, and exempts the
  // registration from adaptive re-planning from now on.
  Status PinContinuousPlan(ContinuousHandle h, const PlanPin& pin);
  // Fresh snapshot of the live statistics feeding the adaptive planner.
  StreamStatsSnapshot CurrentStreamStats() const { return stream_stats_.Snapshot(); }

  // --- Maintenance: snapshot collapse + stream index / transient GC. ---
  // `live_horizon_ms`: no registered window will ever reach before this
  // stream time again (typically now - max window range).
  void RunMaintenance(StreamTime live_horizon_ms);

  // --- Observability (§5.8). ---
  // Refreshes export-time gauges in the attached registry — VTS lag per
  // stream (Local_VTS − Stable_VTS), phi-accrual suspicion per node, door
  // pressure and pending batches, memory, stream-index hit/miss, transient
  // GC reclaim, fabric verb counts, admission stats are scraped by their
  // owners. No-op without a registry.
  void UpdateScrapedMetrics();
  // UpdateScrapedMetrics + the registry's Prometheus-style exposition;
  // `name_filter` narrows to matching metric names (e.g. `node="0"`).
  std::string DumpMetrics(const std::string& name_filter = "");

  // --- Instrumentation. ---
  struct InjectionProfile {
    double inject_ms = 0.0;  // Persistent + transient store writes.
    double index_ms = 0.0;   // Stream index construction.
    size_t tuples = 0;
    size_t batches = 0;
  };
  InjectionProfile injection_profile(StreamId stream) const;

  struct MemoryReport {
    size_t store_bytes = 0;
    size_t snapshot_meta_bytes = 0;
    size_t stream_index_bytes = 0;  // Including replicas.
    size_t transient_bytes = 0;
    size_t string_server_bytes = 0;
    size_t stream_appended_edges = 0;
    size_t stream_index_replicas = 0;
  };
  MemoryReport Memory() const;
  // Per-stream breakdowns (aggregated across nodes, excluding replicas).
  size_t StreamIndexBytes(StreamId stream) const;
  size_t TransientBytes(StreamId stream) const;

  // --- Fault tolerance hooks (§5). ---
  // Logger invoked for every injected batch (incremental checkpointing).
  void SetBatchLogger(std::function<void(const StreamBatch&)> logger);
  // Recovery path: re-injects a logged batch, bypassing the Adaptor. With an
  // at-least-once replay source (checkpoint log + upstream backup overlap),
  // already-injected batches are suppressed, not errors.
  Status ReplayBatch(const StreamBatch& batch);

  // --- Fault injection, degraded operation & recovery. ---
  struct FaultStats {
    uint64_t batches_redelivered = 0;    // First delivery lost, retransmitted.
    uint64_t duplicates_suppressed = 0;  // Caught by the injection seq gate.
    uint64_t batches_delayed = 0;
    uint64_t crashes = 0;
    uint64_t reroutes = 0;               // Executions whose home was down.
    uint64_t degraded_executions = 0;    // Executions with partial results.
    RetryStats delivery_retry;           // Dispatcher shipping retries.
  };
  const FaultStats& fault_stats() const { return fault_stats_; }

  bool NodeUp(NodeId n) const;
  uint32_t UpNodeCount() const;
  // Next batch seq the stream's adaptor will emit (recovery watermark).
  BatchSeq NextSeq(StreamId stream) const;

  // Kills a node: its shard, stream-index replicas and transient slices are
  // lost (volatile state dies with the process), it leaves the fabric and the
  // coordinator's active set, and its vector-timestamp progress is reset.
  // The last live node cannot be crashed.
  Status CrashNode(NodeId node);
  // Invoked after a scheduled CrashEvent kills its node — the hook point for
  // tearing the checkpoint-log tail (the cluster does not know the log path).
  void SetCrashHandler(std::function<void(const CrashEvent&)> handler);
  // Upstream backup: every batch reaching the dispatcher is retained here
  // until the caller acks it as durably checkpointed. Non-owning.
  void SetUpstreamBuffer(UpstreamBuffer* upstream);

  // Node restore, driven by RecoveryManager: reload the crashed node's base
  // partition, replay every logged batch filtered to that node, then verify
  // it caught up and re-admit it to the fabric and the active set.
  Status LoadBaseForNode(NodeId node, std::span<const Triple> triples);
  Status ReplayBatchForNode(NodeId node, const StreamBatch& batch);
  Status FinishNodeRestore(NodeId node);

  // --- Online elastic reconfiguration (DESIGN.md §5.10). ---
  // Live shard handoff, driven by ReconfigManager (or directly by tests):
  // Begin pins a single in-flight migration and turns on dual-apply for the
  // moving shard; LoadBaseForShard / ReplayBatchForShard copy the shard's
  // base partition and logged history into the target (the source keeps
  // serving throughout); FinishShardTransfer marks the copy complete, after
  // which the cutover (an atomic ownership-epoch bump) happens as soon as
  // Stable_SN covers the delivered frontier — immediately in a healthy
  // cluster, otherwise deferred and retried from the feed path. A crash of
  // either endpoint, or the target falling behind, aborts and rolls back to
  // the old epoch; AbortShardMove does the same explicitly.
  uint64_t OwnershipEpoch() const { return shard_map_.epoch(); }
  uint32_t ShardCount() const { return shard_map_.shard_count(); }
  NodeId ShardOwner(uint32_t shard) const { return shard_map_.OwnerOfShard(shard); }
  std::vector<uint32_t> ShardsOwnedBy(NodeId node) const {
    return shard_map_.ShardsOwnedBy(node);
  }
  uint32_t ShardOfVertexId(VertexId v) const { return shard_map_.ShardOfVertex(v); }
  bool MigrationPending() const { return migration_ != nullptr; }
  Status BeginShardMove(uint32_t shard, NodeId target);
  Status LoadBaseForShard(std::span<const Triple> triples);
  Status ReplayBatchForShard(const StreamBatch& batch);
  Status FinishShardTransfer();
  Status AbortShardMove(const std::string& reason);

  // Grows the cluster by one empty node (up, serving, active, VTS seeded at
  // the delivered frontier). Must not run concurrently with queries or while
  // a migration is in flight; the new node receives shards via MoveShard.
  StatusOr<NodeId> AddNode();

  // Marks a node draining: it stops hosting ingest duties and registered
  // queries (both re-home to a serving, non-draining node), is skipped by
  // execution reroutes, and is rejected as a migration target. Its shards
  // are moved off with MoveShard/DrainNode; the node keeps serving reads for
  // shards it still owns until then.
  Status BeginDrain(NodeId node);
  bool IsDraining(NodeId node) const { return draining_.count(node) > 0; }

  struct ReconfigStats {
    uint64_t moves_started = 0;
    uint64_t moves_committed = 0;
    uint64_t moves_aborted = 0;
    uint64_t edges_copied = 0;        // Base copy + history replay.
    uint64_t dual_applied_edges = 0;  // Live batches mirrored to the target.
    uint64_t batches_replayed = 0;
    uint64_t nodes_added = 0;
    uint64_t drains_started = 0;
    uint64_t rehomed_registrations = 0;
    // Stale-copy edges removed from targets at Begin (former owners keep
    // their copy at cutover; it must go before the shard can come back).
    uint64_t stale_edges_purged = 0;
  };
  const ReconfigStats& reconfig_stats() const { return reconfig_stats_; }

  // --- Overload protection (§5.6). ---
  // Drives heartbeats / the failure detector, drains slow-node backlogs, and
  // decays shed pressure. AdvanceStreams calls this; drivers whose feed is
  // stalled by backpressure call it directly so wall-clock still advances.
  void TickHealth(StreamTime now_ms);
  // Hook fired when a transient append hits the memory budget (before the
  // one retry) — typically MaintenanceDaemon::Kick. Single-threaded with
  // respect to the feed path.
  void SetPressureListener(std::function<void(StreamId, NodeId)> listener);
  OverloadStats overload_stats() const;
  // Per-batch shed/loss ledger entry, for auditing "correct modulo declared
  // loss": the differential harness checks that everything missing from a
  // window result is accounted for here. Zeroes when nothing was recorded.
  struct ShedInfo {
    uint64_t timing_tuples = 0;        // At the door, before shedding.
    uint64_t door_shed_tuples = 0;     // Suffix-shed at the adaptor.
    uint64_t injector_lost_edges = 0;  // Shed or lost at AppendSlice.
  };
  ShedInfo ShedInfoFor(StreamId stream, BatchSeq seq) const;
  const FailureDetector* failure_detector() const { return health_.get(); }
  // Gray-failure detector (§5.11); set iff config_.straggler.enabled.
  const StragglerDetector* straggler_detector() const { return straggler_.get(); }
  // Is the node currently demoted from fork-join fan-out as a straggler?
  bool StragglerSlow(NodeId n) const {
    return straggler_ != nullptr && straggler_->slow(n);
  }
  // Current hedge trigger delay (modeled ns), derived from the per-node
  // service histograms; 0 while the histograms are still warming up.
  double HedgeDelayNs() const;
  // Batches held at the adaptor door by credit/plan backpressure.
  size_t PendingBatches(StreamId stream) const;
  bool NodeServing(NodeId n) const;
  uint32_t ServingNodeCount() const;

 private:
  // Per-batch shed/loss ledger, in door-tuple units (1 tuple = 2 edges):
  // lets window executions report exactly how much of their timing data is
  // missing (guarded by overload_mu_; pruned with the GC horizon).
  struct ShedRecord {
    uint64_t timing_tuples = 0;        // At the door, before shedding.
    uint64_t door_shed_tuples = 0;     // Suffix-shed at the adaptor.
    uint64_t injector_lost_edges = 0;  // Shed or lost at AppendSlice.
  };

  struct StreamState {
    std::string name;
    std::unique_ptr<StreamAdaptor> adaptor;
    NodeId ingest_node = 0;  // Where Adaptor+Dispatcher run for this stream.
    std::unordered_set<NodeId> subscribers;  // Locality-aware index replicas.
    InjectionProfile profile;

    // Overload state (feed-path single-threaded except `shed`, which query
    // threads read under overload_mu_).
    int shed_priority = 0;
    std::deque<StreamBatch> pending;  // Door queue awaiting credits/plans.
    PressureGauge pressure;
    std::unordered_map<BatchSeq, ShedRecord> shed;

    // Per-stream ingest counters, resolved at DefineStream (null when no
    // registry is attached).
    obs::Counter* obs_batches = nullptr;
    obs::Counter* obs_tuples = nullptr;
  };

  // A batch partition destined for a slow node, parked until the node's
  // slow window ends (paper's fallback: never stall healthy nodes on a
  // straggler — defer, then drain FIFO when it catches up).
  struct DeferredInjection {
    StreamId stream = 0;
    BatchSeq seq = 0;
    SnapshotNum sn = 0;
    std::vector<std::pair<Key, VertexId>> timeless;
    std::vector<std::pair<Key, VertexId>> timing;
  };

  // One immutable plan generation for a registration (§5.14). Triggers copy
  // the shared_ptr under plan_mu and use that snapshot for their whole
  // execution, so a concurrent cutover can never split one trigger across
  // two plans.
  struct PlanState {
    std::vector<int> order;
    bool selective = true;
    uint64_t version = 1;
    bool pinned = false;  // Installed via PinContinuousPlan; replan skips it.
    // Live-statistics snapshot the plan was derived from: the drift
    // detector's "then" side.
    StreamStatsSnapshot stats;
  };

  struct Registration {
    Query query;
    NodeId home = 0;
    std::vector<StreamId> stream_ids;  // Parallel to query.windows.
    // Registered queries are "stored procedures" (paper Fig. 5): the plan is
    // computed on the first triggered execution (when window statistics
    // exist) and reused thereafter. With config_.replan.enabled the plan can
    // later be replaced by a parity-gated adaptive cutover or a manual pin;
    // plan_mu guards the pointer swap and the trigger cadence counter.
    std::unique_ptr<std::mutex> plan_mu = std::make_unique<std::mutex>();
    std::shared_ptr<const PlanState> plan;  // Null until first planned.
    uint64_t triggers_since_check = 0;      // Guarded by plan_mu.

    // Delta cache (§5.9), attached at registration when the query is
    // eligible; null otherwise. `delta_window` is the index into
    // query.windows of the single window-scoped pattern's window, and
    // `last_stable` the Stable_VTS entry observed at the previous delta
    // trigger (drives the Coordinator's trigger-delta computation).
    std::unique_ptr<DeltaCache> delta_cache;
    int delta_window = -1;
    std::unique_ptr<std::atomic<BatchSeq>> last_stable;

    // Template-group membership (§5.12). Unregistered registrations stay in
    // the deque (indices are handles) with active=false. `group` indexes
    // groups_; `hole_constant` is this member's user constant and
    // `var_to_canon` its variable renaming into the group's probe space.
    bool active = true;
    int group = -1;
    VertexId hole_constant = 0;
    std::vector<int> var_to_canon;
  };

  // One template group (§5.12): the shared probe registration, its members,
  // and a per-trigger memo of the probe's execution plus the hash partition
  // of its rows by hole value. The memo key pins everything a window read
  // depends on — trigger end, stored-graph epoch, snapshot, ownership epoch
  // and the MQO generation counter (bumped by GC, crashes, reconfig and
  // membership churn) — so a stale memo can never be served.
  struct TemplateGroup {
    std::string key;
    bool live = true;
    Registration probe;
    int hole_col = 0;  // Probe result column holding the hole binding.
    std::vector<ContinuousHandle> members;

    std::mutex mu;  // Guards members and the memo.
    bool memo_valid = false;
    StreamTime memo_end_ms = 0;
    uint64_t memo_stored_epoch = 0;
    SnapshotNum memo_snapshot = 0;
    uint64_t memo_ownership_epoch = 0;
    uint64_t memo_gen = 0;
    QueryExecution memo_exec;
    std::unordered_map<VertexId, std::vector<size_t>> memo_partition;
  };

  // Door-side admission of a finished mini-batch: records its timing total,
  // sheds a suffix under pressure, then queues it behind the credit gate.
  void EnqueueBatch(StreamBatch&& batch);
  // Delivers queued batches while credits and plan extensions allow.
  void PumpPending(StreamId stream);
  bool HasCredit(StreamId stream) const;
  // Appends a batch's timing edges to node `n`'s transient slice, running
  // the pressure escalation (kick maintenance, retry, shed prefix) when the
  // memory budget rejects the append.
  void AppendTimingEdges(StreamId stream, NodeId n, BatchSeq seq,
                         const std::vector<std::pair<Key, VertexId>>& edges);
  void DrainBacklog(NodeId n);
  bool NodeCaughtUp(NodeId n) const;
  // Loss accounting for the timing edges inside `reg`'s windows at end_ms:
  // sets exec->shed_fraction and exec->timing_edges_lost from the shed
  // ledger. Every execution path (in-place, fork-join, and the UNION merge)
  // funnels through this one helper so no path can drop the accounting.
  void ApplyWindowLoss(const Registration& reg, StreamTime end_ms,
                       QueryExecution* exec) const;

  // Dispatcher-side delivery: applies the fault schedule (drop = backoff +
  // retransmit, duplicate, delay), fires scheduled crashes, retains the batch
  // upstream, and runs the at-least-once -> exactly-once sequence gate before
  // injecting.
  void DeliverBatch(const StreamBatch& batch);
  // `only_node` >= 0 restricts injection to that node's partition (node
  // restore replay); profiles, logging and the delivery gate are bypassed.
  void InjectBatch(const StreamBatch& batch, int only_node = -1);
  // Home for an execution: `home` itself, or the first live node when `home`
  // is down (graceful degradation reroute).
  NodeId EffectiveHome(NodeId home);
  void ApplyDegrade(const DegradeState& degrade, QueryExecution* exec);
  bool IsSelective(const Query& q, const std::vector<int>& plan) const;
  // Plans and executes each UNION branch, concatenates, applies modifiers.
  StatusOr<QueryExecution> ExecuteUnion(const Registration& reg, StreamTime end_ms,
                                        SnapshotNum snapshot);
  // `degrade` (optional) collects deadline/hedge accounting from the
  // fork-join rounds in addition to the sources' read accounting.
  StatusOr<QueryExecution> RunQuery(const Query& q, const std::vector<int>& plan,
                                    const ExecContext& ctx, NodeId home,
                                    bool fork_join, bool selective,
                                    SnapshotNum snapshot,
                                    DegradeState* degrade = nullptr);
  // Records one per-node service-latency sample (modeled ns) into the HDR
  // histogram + straggler EWMA; no-op unless hedging or straggler detection
  // is enabled.
  void ObserveServiceSample(NodeId n, double service_ns);
  // Fork-join fan-out under straggler demotion: serving nodes not currently
  // kSlow (falls back to all serving nodes when demotion would empty it).
  std::vector<NodeId> ForkJoinFanout() const;
  // --- Delta cache (§5.9). ---
  // Index into q.windows of the single sliding-window pattern, or -1 when
  // the query is ineligible for delta caching.
  static int DeltaEligibleWindow(const Query& q);
  // Stored-graph epoch: any append/load/crash anywhere changes it, flushing
  // every delta cache at its next trigger (cheap relaxed-atomic sums).
  uint64_t StoredEpoch() const;
  // Eviction-listener fan-out: retire contributions below `min_live` in
  // every delta cache fed by `stream`.
  void NotifySliceEviction(StreamId stream, BatchSeq min_live);
  void WireEvictionListeners(StreamId stream, NodeId node);
  // Shared body of ExecuteContinuousAt / ExecuteContinuousColdAt.
  StatusOr<QueryExecution> ExecuteContinuousImpl(ContinuousHandle h,
                                                 StreamTime end_ms,
                                                 bool allow_delta, bool count,
                                                 double deadline_ms = 0.0);
  // Independent execution of one registration's trigger (plan-once, delta
  // gate, cold pipeline, degrade/loss accounting). The caller has already
  // verified the trigger condition; also runs the group probe (§5.12).
  StatusOr<QueryExecution> ExecuteRegistrationAt(Registration& reg,
                                                 StreamTime end_ms,
                                                 bool allow_delta, bool count);
  // --- Template groups (§5.12). ---
  // Attaches a delta cache to `reg` when eligible and indexes it by stream.
  void AttachDeltaCache(Registration& reg);
  // Buckets a just-appended registration into its template group (creating
  // the group and its probe on first sight of the signature).
  void AddToTemplateGroup(ContinuousHandle h);
  // Unregister path: shrink the group; the last member dissolves it and
  // detaches the probe's per-group delta cache.
  void RemoveFromTemplateGroup(ContinuousHandle h);
  // Grouped trigger dispatch: serve `reg` from its group's shared probe
  // evaluation. nullopt = this trigger must run independently (group below
  // min size, degraded cluster, probe failure, or an empty partition whose
  // member carries FILTERs and must reproduce independent error semantics).
  std::optional<StatusOr<QueryExecution>> TryExecuteGrouped(Registration& reg,
                                                            StreamTime end_ms);
  // Drops the delta cache's stream-map entry (unregister / dissolution).
  void DetachDeltaCache(Registration& reg);
  // Invalidate every group memo (GC, crash, reconfig, membership churn).
  void BumpMqoGeneration() {
    mqo_gen_.fetch_add(1, std::memory_order_relaxed);
  }
  // Effective budget for an execution: the caller's deadline_ms, falling
  // back to config_.deadline.default_budget_ms; 0 (no budget) unless
  // config_.deadline.enforce.
  double EffectiveBudgetMs(double deadline_ms) const;
  // Delta pipeline for one trigger, executing under `plan`. Sets *used=false
  // (without error) when the trigger cannot run as a delta (empty window,
  // executor fallback) — the caller then takes the cold path.
  StatusOr<QueryExecution> RunQueryDelta(Registration& reg,
                                         const PlanState& plan,
                                         StreamTime end_ms, NodeId home,
                                         DegradeState* degrade, bool* used);
  // --- Adaptive re-planning (§5.14). ---
  // Returns the registration's current plan, computing and installing it on
  // first use (the plan-once lifecycle). Null only when planning failed.
  std::shared_ptr<const PlanState> EnsurePlanned(Registration& reg,
                                                 StreamTime end_ms, NodeId home);
  // Trigger-cadence drift check + parity-gated cutover. No-op unless
  // config_.replan.enabled and the registration is unpinned.
  void MaybeReplan(Registration& reg, StreamTime end_ms, NodeId home);
  // Installs `next` as reg's plan. `rekey` re-keys the delta cache to the
  // new version and invalidates MQO memos — the coherence step a correct
  // cutover must never skip.
  void InstallPlan(Registration& reg, std::shared_ptr<const PlanState> next,
                   bool rekey);
  // Shadow execution of `order` over reg's window at end_ms for the parity
  // gate: no cost charging, no counters, no stats observation. Accumulates
  // intermediate row production into *rows for the shadow budget.
  StatusOr<QueryResult> ShadowExecute(Registration& reg, StreamTime end_ms,
                                      NodeId home,
                                      const std::vector<int>& order,
                                      uint64_t* rows);
  // Planner hints for this registration (delta bias, chunk rows); `stats`
  // attaches the live snapshot so observed fan-outs refine the estimates.
  PlanHints HintsFor(const Registration& reg,
                     const StreamStatsSnapshot* stats) const;
  // Per-step observer feeding ObserveExpansion, with window patterns
  // attributed to the stream feeding them (reg.stream_ids). Production
  // executions only; `reg` must outlive the returned callable.
  std::function<void(const TriplePattern&, size_t, size_t, size_t)>
  MakeExpansionObserver(const Registration& reg);
  // Builds sources for a continuous execution; `holders` keeps them alive.
  // `home` may differ from reg.home after a degradation reroute; `degrade`
  // (optional) collects partial-result and retry accounting.
  StatusOr<ExecContext> BuildContext(const Registration& reg, StreamTime end_ms,
                                     ChargePolicy policy, NodeId home,
                                     std::vector<std::unique_ptr<NeighborSource>>* holders,
                                     DegradeState* degrade);

  // --- Online reconfiguration internals (DESIGN.md §5.10). ---
  // One in-flight shard migration; feed-path single-threaded like
  // delivered_next_ (queries never touch it — they hold view snapshots).
  struct Migration {
    uint32_t shard = 0;
    NodeId source = 0;
    NodeId target = 0;
    bool transfer_done = false;
    // delivered_next_ snapshot at Begin: batches with seq >= begin_next[s]
    // reach the target via dual-apply; older ones via history replay.
    std::vector<BatchSeq> begin_next;
    // Per-stream replay watermark (next expected seq), making the
    // at-least-once checkpoint log exactly-once into the target.
    std::vector<BatchSeq> replayed_next;
    uint64_t edges_copied = 0;
  };

  // Cutover barrier: commits the pending migration iff the transfer is done
  // and every delivered batch's plan SN is covered by Stable_SN (all data
  // folded into the target — including deferred-visibility folds — is
  // visible at or below any post-commit read snapshot). Called wherever the
  // frontier can advance: batch delivery, health ticks, transfer finish.
  void TryCommitMigration();
  // Abort paths. `taint` poisons the (shard, target) pair: a partial copy
  // is stranded on the target and re-replaying would duplicate it; crashing
  // the target (which resets its stores) clears its taints.
  void AbortMigrationInternal(bool taint, const std::string& reason);
  // Crash hook: aborts when `node` is either migration endpoint.
  void AbortMigrationFor(NodeId node);
  // Re-homes registered continuous queries from a draining node.
  void RehomeRegistrations(NodeId from, NodeId to);

  ClusterConfig config_;
  std::unique_ptr<StringServer> owned_strings_;
  StringServer* strings_;  // owned_strings_.get() or the shared server.
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<Coordinator> coordinator_;

  std::vector<std::unique_ptr<GStore>> stores_;
  std::vector<GStore*> stores_raw_;

  std::vector<StreamState> streams_;
  std::unordered_map<std::string, StreamId> stream_names_;
  // indexes_[stream][node], transients_[stream][node].
  std::vector<std::vector<std::unique_ptr<StreamIndex>>> stream_indexes_;
  std::vector<std::vector<std::unique_ptr<TransientStore>>> transients_;
  std::vector<std::vector<StreamIndex*>> stream_indexes_raw_;
  std::vector<std::vector<TransientStore*>> transients_raw_;

  // Deque: references stay valid while later registrations are appended, so
  // executions and registrations can overlap safely.
  std::deque<Registration> registrations_;
  // --- Template groups (§5.12). ---
  // groups_ entries are never erased (indices stay stable in Registration::
  // group); a dissolved group is marked !live. Guarded by mqo_mu_ together
  // with group_index_ and the counters; per-group execution state is under
  // each group's own mutex.
  mutable std::mutex mqo_mu_;
  std::vector<std::unique_ptr<TemplateGroup>> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  // Memo generation: any event that can change window contents without
  // moving the stored epoch or snapshot (GC/eviction, crash, reconfig,
  // membership churn) bumps it, invalidating every group memo.
  std::atomic<uint64_t> mqo_gen_{0};
  std::atomic<uint64_t> mqo_grouped_registrations_{0};
  std::atomic<uint64_t> mqo_groups_formed_{0};
  std::atomic<uint64_t> mqo_groups_dissolved_{0};
  std::atomic<uint64_t> mqo_shared_evals_{0};
  std::atomic<uint64_t> mqo_fanout_served_{0};
  std::atomic<uint64_t> mqo_fallbacks_{0};
  // delta_caches_by_stream_[stream] = caches of registrations whose window
  // pattern consumes that stream (each cache appears under exactly one
  // stream). Guarded by delta_mu_; eviction listeners and registration
  // append race with each other and with triggers.
  mutable std::mutex delta_mu_;
  std::vector<std::vector<DeltaCache*>> delta_caches_by_stream_;
  // --- Adaptive re-planning (§5.14). ---
  // Live statistics: rates fed from InjectBatch (logical time), fan-outs
  // from the executor's per-step observer on production executions.
  StreamStatsCollector stream_stats_;
  mutable std::mutex replan_mu_;  // Guards replan_stats_.
  ReplanStats replan_stats_;
  std::function<void(const StreamBatch&)> batch_logger_;
  size_t index_replications_ = 0;

  // Per stream: next seq expected at the dispatcher. At-least-once delivery
  // (drops retransmitted, duplicates, replay overlap) becomes exactly-once
  // injection by suppressing anything below this watermark.
  std::vector<BatchSeq> delivered_next_;

  // --- Online reconfiguration state (DESIGN.md §5.10). ---
  ShardMap shard_map_;
  std::unique_ptr<Migration> migration_;
  // (shard, target) pairs poisoned by a non-crash abort; cleared for a
  // target when it crashes (its stores reset, stranded copies die with it).
  std::set<std::pair<uint32_t, NodeId>> migration_taints_;
  std::unordered_set<NodeId> draining_;
  // Nodes CrashNode marked and FinishNodeRestore has not yet re-admitted;
  // restoring an unmarked node is an InvalidArgument, not a silent success.
  std::unordered_set<NodeId> crash_marked_;
  // injected_window_edges_[stream][node]: edges (timeless + timing) this
  // node absorbed from the stream, scoping CrashNode's delta-cache flush to
  // streams whose window data actually touched the crashed node.
  std::vector<std::vector<uint64_t>> injected_window_edges_;
  ReconfigStats reconfig_stats_;
  std::function<void(const CrashEvent&)> crash_handler_;
  UpstreamBuffer* upstream_ = nullptr;
  FaultStats fault_stats_;

  // --- Overload protection. ---
  LoadShedder shedder_;
  std::unique_ptr<FailureDetector> health_;  // Set iff failure_detector on.
  // --- Tail robustness (§5.11). ---
  std::unique_ptr<StragglerDetector> straggler_;  // Set iff straggler.enabled.
  // Per-node HDR histograms of modeled service latency; the hedge delay is
  // derived from them (median of per-node p95s, times hedge.margin_mult).
  // Guarded by service_mu_ (query threads write, health ticks read).
  mutable std::mutex service_mu_;
  std::vector<BucketHistogram> service_hist_;
  std::vector<obs::HistogramMetric*> service_hist_metrics_;  // Parallel.
  std::vector<std::deque<DeferredInjection>> backlog_;  // Per node.
  std::function<void(StreamId, NodeId)> pressure_listener_;
  StreamTime last_health_ms_ = 0;
  // Guards shed records + overload_stats_ (query threads read both while
  // the feed thread writes); never held across DeliverBatch or the listener.
  mutable std::mutex overload_mu_;
  OverloadStats overload_stats_;

  // --- Observability (§5.8). ---
  // Hot-path counter handles, resolved once at construction so an enabled
  // registry costs one relaxed atomic add per event and a disabled one costs
  // a null check. These are incremented at the event sites themselves —
  // independently of OverloadStats / FaultStats / the shed ledger — which is
  // what lets the differential harness cross-check registry vs. ledger.
  struct ObsCounters {
    obs::Counter* door_shed_tuples = nullptr;
    obs::Counter* injector_shed_edges = nullptr;
    obs::Counter* timing_edges_lost = nullptr;
    obs::Counter* feed_rejections = nullptr;
    obs::Counter* credit_stalls = nullptr;
    obs::Counter* plan_stalls = nullptr;
    obs::Counter* append_pressure_events = nullptr;
    obs::Counter* backlog_deferred = nullptr;
    obs::Counter* backlog_drained = nullptr;
    obs::Counter* quarantines = nullptr;
    obs::Counter* reactivations = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* batches_injected = nullptr;
    obs::Counter* tuples_injected = nullptr;
    obs::Counter* queries_oneshot = nullptr;
    obs::Counter* queries_continuous = nullptr;
    obs::Counter* fault_retries = nullptr;
    obs::Counter* backoff_us = nullptr;
    obs::Counter* batches_redelivered = nullptr;
    obs::Counter* duplicates_suppressed = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* reroutes = nullptr;
    obs::Counter* degraded_executions = nullptr;
    obs::Counter* delta_hits = nullptr;
    obs::Counter* delta_misses = nullptr;
    obs::Counter* delta_invalidations = nullptr;
    obs::Counter* delta_epoch_flushes = nullptr;
    obs::Counter* delta_bypasses = nullptr;
    obs::Counter* reconfig_moves_started = nullptr;
    obs::Counter* reconfig_moves_committed = nullptr;
    obs::Counter* reconfig_moves_aborted = nullptr;
    obs::Counter* reconfig_edges_copied = nullptr;
    obs::Counter* reconfig_dual_applied_edges = nullptr;
    obs::Counter* reconfig_rehomed_registrations = nullptr;
    obs::Counter* reconfig_stale_edges_purged = nullptr;
    obs::Counter* hedge_issued = nullptr;
    obs::Counter* hedge_wins = nullptr;
    obs::Counter* hedge_cancelled = nullptr;
    obs::Counter* hedge_duplicates_suppressed = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* deadline_skipped_reads = nullptr;
    obs::Counter* deadline_cancelled_steps = nullptr;
    obs::Counter* straggler_demotions = nullptr;
    obs::Counter* straggler_promotions = nullptr;
    obs::Counter* mqo_grouped_registrations = nullptr;
    obs::Counter* mqo_groups_formed = nullptr;
    obs::Counter* mqo_groups_dissolved = nullptr;
    obs::Counter* mqo_shared_evals = nullptr;
    obs::Counter* mqo_fanout_served = nullptr;
    obs::Counter* mqo_fallbacks = nullptr;
    obs::Counter* replan_checks = nullptr;
    obs::Counter* replan_drift_triggers = nullptr;
    obs::Counter* replan_cutovers = nullptr;
    obs::Counter* replan_parity_failures = nullptr;
    obs::Counter* replan_budget_overruns = nullptr;
    obs::Counter* replan_pins = nullptr;
    obs::Counter* delta_plan_flushes = nullptr;
  };
  ObsCounters obs_;
  obs::Tracer* tracer_ = nullptr;  // config_.tracer, null when disabled.
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_CLUSTER_H_
