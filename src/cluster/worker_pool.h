// Worker pool: the query-engine layer's thread model (paper §3: "The query
// engine layer binds a worker thread on each core with a logical task queue
// to continuously handle requests").
//
// Callers submit continuous executions and one-shot queries; workers drain
// the queue concurrently and fulfil futures. The pool exists so deployments
// can actually serve concurrent clients — the benches derive throughput
// analytically instead (one core cannot host 8x16 workers), but the tests
// drive this pool for real.

#ifndef SRC_CLUSTER_WORKER_POOL_H_
#define SRC_CLUSTER_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/overload/admission_controller.h"
#include "src/testkit/schedule_controller.h"

namespace wukongs {

class WorkerPool {
 public:
  // `schedule` (optional, non-owning): a schedule fuzzer that picks which
  // queued task a worker pops — the pool promises completion, not FIFO, so
  // any dequeue order is a legal schedule worth testing.
  WorkerPool(Cluster* cluster, uint32_t threads,
             testkit::ScheduleController* schedule = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Admission control (optional, non-owning; must outlive the pool). When
  // set, one-shot submissions past the concurrency cap or an unmeetable
  // deadline are rejected fast with kResourceExhausted instead of queueing.
  void SetAdmissionController(AdmissionController* admission);

  // Enqueues the execution of a registered continuous query for the window
  // ending at `end_ms`. `deadline_ms` (0 = none) is the trigger's latency
  // budget, activated on the worker thread that executes the task (the
  // budget prices modeled work, not queue residency).
  std::future<StatusOr<QueryExecution>> SubmitContinuous(
      Cluster::ContinuousHandle handle, StreamTime end_ms,
      double deadline_ms = 0.0);

  // Enqueues a one-shot query. `deadline_ms` (0 = none) is the caller's
  // latency budget: checked by the admission controller at the door
  // (rejections carry a retry-after hint) and carried into the execution,
  // where an exhausted budget cancels remaining remote work.
  std::future<StatusOr<QueryExecution>> SubmitOneShot(Query query, NodeId home = 0,
                                                      double deadline_ms = 0.0);

  // Tasks accepted but not yet finished.
  size_t Pending() const;
  // Blocks until the queue is empty and all workers are idle.
  void Drain();

  size_t executed() const { return executed_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  Cluster* cluster_;
  AdmissionController* admission_ = nullptr;
  testkit::ScheduleController* schedule_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable drained_;
  std::deque<std::packaged_task<StatusOr<QueryExecution>()>> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  std::atomic<size_t> executed_{0};
  // Resolved from the cluster's registry at construction; null = obs off.
  obs::Counter* obs_submitted_ = nullptr;
  obs::Counter* obs_executed_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  // Rejection split by admission reason (concurrency cap vs unmeetable
  // deadline); obs_rejected_ stays the unlabeled total.
  obs::Counter* obs_rejected_concurrency_ = nullptr;
  obs::Counter* obs_rejected_deadline_ = nullptr;
  std::vector<std::thread> workers_;
};

}  // namespace wukongs

#endif  // SRC_CLUSTER_WORKER_POOL_H_
