#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/fault/upstream_buffer.h"

namespace wukongs {
namespace {

// Fork-join steps moving fewer rows than this piggyback the continuation on a
// single forwarded message (migrating execution); larger steps pay a full
// scatter/gather round plus volume.
constexpr size_t kSmallStepRows = 64;
constexpr double kRdmaHopNs = 1000.0;
constexpr double kTcpHopNs = 5000.0;

// Per-query coordination cost of a full fork-join (dispatch into every
// node's task queue + join barrier). Selective queries forced into fork-join
// degrade to *migrating execution* instead: the continuation hops between
// the (few) nodes holding its data, paying per-step hops but no cluster-wide
// barrier — which is why the paper's non-RDMA mode barely affects L1-L3.
constexpr double kForkJoinSetupRdmaNs = 10000.0;
constexpr double kForkJoinSetupTcpNs = 40000.0;

constexpr size_t kBindingBytes = sizeof(VertexId);
constexpr size_t kTupleWireBytes = 24;

}  // namespace

Cluster::Cluster(const ClusterConfig& config, StringServer* shared_strings)
    : config_(config),
      owned_strings_(shared_strings == nullptr ? std::make_unique<StringServer>()
                                               : nullptr),
      strings_(shared_strings == nullptr ? owned_strings_.get() : shared_strings),
      fabric_(std::make_unique<Fabric>(config.nodes, config.network,
                                       config.transport)),
      coordinator_(std::make_unique<Coordinator>(config.nodes,
                                                 config.reserved_snapshots,
                                                 config.batches_per_sn)) {
  assert(config_.nodes >= 1);
  fabric_->set_fault_injector(config_.fault_injector);
  stores_.reserve(config_.nodes);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    stores_.push_back(std::make_unique<GStore>(n));
    stores_raw_.push_back(stores_.back().get());
  }
}

Cluster::~Cluster() = default;

StatusOr<StreamId> Cluster::DefineStream(
    const std::string& name, const std::vector<std::string>& timing_predicates) {
  if (stream_names_.count(name) > 0) {
    return Status::AlreadyExists("stream " + name + " already defined");
  }
  StreamId id = static_cast<StreamId>(streams_.size());
  std::unordered_set<PredicateId> timing;
  for (const std::string& p : timing_predicates) {
    timing.insert(strings_->InternPredicate(p));
  }
  StreamState state;
  state.name = name;
  state.adaptor = std::make_unique<StreamAdaptor>(id, config_.batch_interval_ms,
                                                  std::move(timing));
  state.ingest_node = static_cast<NodeId>(id % config_.nodes);
  streams_.push_back(std::move(state));
  stream_names_.emplace(name, id);

  stream_indexes_.emplace_back();
  transients_.emplace_back();
  stream_indexes_raw_.emplace_back();
  transients_raw_.emplace_back();
  for (NodeId n = 0; n < config_.nodes; ++n) {
    stream_indexes_.back().push_back(std::make_unique<StreamIndex>());
    stream_indexes_raw_.back().push_back(stream_indexes_.back().back().get());
    transients_.back().push_back(
        std::make_unique<TransientStore>(config_.transient_budget_bytes));
    transients_raw_.back().push_back(transients_.back().back().get());
  }
  coordinator_->RegisterStream(id);
  delivered_next_.push_back(0);
  return id;
}

StatusOr<StreamId> Cluster::FindStream(const std::string& name) const {
  auto it = stream_names_.find(name);
  if (it == stream_names_.end()) {
    return Status::NotFound("unknown stream " + name);
  }
  return it->second;
}

void Cluster::LoadBase(std::span<const Triple> triples) {
  for (const Triple& t : triples) {
    stores_raw_[OwnerOf(t.subject)]->LoadEdge(Key(t.subject, t.predicate, Dir::kOut),
                                              t.object);
    stores_raw_[OwnerOf(t.object)]->LoadEdge(Key(t.object, t.predicate, Dir::kIn),
                                             t.subject);
  }
}

Status Cluster::FeedStream(StreamId stream, const StreamTupleVec& tuples) {
  if (stream >= streams_.size()) {
    return Status::NotFound("unknown stream id");
  }
  std::vector<StreamBatch> batches;
  Status s = streams_[stream].adaptor->Ingest(tuples, &batches);
  if (!s.ok()) {
    return s;
  }
  for (const StreamBatch& b : batches) {
    DeliverBatch(b);
  }
  return Status::Ok();
}

void Cluster::AdvanceStreams(StreamTime now_ms) {
  // Inject across streams in batch-sequence order so snapshots stay
  // contiguous on keys shared between streams (minimal cross-stream skew —
  // the paper's Injector achieves the same by stalling past the announced
  // SN-VTS plan).
  std::vector<StreamBatch> batches;
  for (StreamState& state : streams_) {
    state.adaptor->AdvanceTo(now_ms, &batches);
  }
  std::stable_sort(batches.begin(), batches.end(),
                   [](const StreamBatch& a, const StreamBatch& b) {
                     return a.seq < b.seq;
                   });
  for (const StreamBatch& b : batches) {
    DeliverBatch(b);
  }
}

void Cluster::DeliverBatch(const StreamBatch& batch) {
  // Upstream backup (§5): the source keeps the batch until it is acked as
  // durably checkpointed — the recovery path replays this tail.
  if (upstream_ != nullptr) {
    upstream_->Retain(batch);
  }

  FaultInjector* inj = config_.fault_injector;
  if (inj != nullptr) {
    if (auto crash = inj->TakeCrash(batch.stream, batch.seq)) {
      // The crash fires before this delivery: the node misses this batch and
      // everything after it until restored.
      Status s = CrashNode(crash->node);
      if (s.ok() && crash_handler_) {
        crash_handler_(*crash);
      }
    }
  }

  BatchFate fate = inj != nullptr ? inj->FateOf(batch.stream, batch.seq)
                                  : BatchFate::kDeliver;
  if (fate == BatchFate::kDrop) {
    // First delivery lost on the wire. The upstream notices the missing ack
    // after one backoff interval and retransmits; delivery order is
    // preserved, so the cost is pure added latency.
    double wait = config_.retry.BackoffNs(1);
    SimCost::Add(wait);
    fault_stats_.delivery_retry.backoff_ns += wait;
    ++fault_stats_.delivery_retry.retries;
    ++fault_stats_.batches_redelivered;
  } else if (fate == BatchFate::kDelay) {
    SimCost::Add(inj->schedule().batch_delay_ns);
    ++fault_stats_.batches_delayed;
  }

  // At-least-once delivery -> exactly-once injection: the sequence gate
  // swallows the duplicate copy (and any replay overlap).
  const int copies = fate == BatchFate::kDuplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    if (batch.seq < delivered_next_[batch.stream]) {
      ++fault_stats_.duplicates_suppressed;
      continue;
    }
    InjectBatch(batch);
    delivered_next_[batch.stream] = batch.seq + 1;
  }
}

void Cluster::InjectBatch(const StreamBatch& batch, int only_node) {
  StreamState& state = streams_[batch.stream];
  const uint32_t nodes = config_.nodes;
  const bool filtered = only_node >= 0;
  SnapshotNum sn = coordinator_->PlanSnFor(batch.stream, batch.seq);

  // Live injection targets every live node (a quarantined node's partition is
  // recovered later from the log); restore replay targets exactly one node.
  auto applies = [&](NodeId n) {
    return filtered ? n == static_cast<NodeId>(only_node) : fabric_->node_up(n);
  };
  // The stream's Adaptor+Dispatcher fail over to a surviving node when their
  // host is down; shipping then originates there.
  NodeId ingest = state.ingest_node;
  if (!fabric_->node_up(ingest)) {
    for (NodeId n = 0; n < nodes; ++n) {
      if (fabric_->node_up(n)) {
        ingest = n;
        break;
      }
    }
  }

  // Dispatcher: partition each tuple's two directions by owner node.
  std::vector<std::vector<std::pair<Key, VertexId>>> timeless(nodes);
  std::vector<std::vector<std::pair<Key, VertexId>>> timing(nodes);
  for (const StreamTuple& t : batch.tuples) {
    Key out_key(t.triple.subject, t.triple.predicate, Dir::kOut);
    Key in_key(t.triple.object, t.triple.predicate, Dir::kIn);
    auto& out_dst = t.kind == TupleKind::kTiming ? timing : timeless;
    out_dst[OwnerOf(t.triple.subject)].emplace_back(out_key, t.triple.object);
    out_dst[OwnerOf(t.triple.object)].emplace_back(in_key, t.triple.subject);
  }

  // Injection: persistent appends (timeless) + transient slices (timing).
  LatencyProbe inject_probe;
  std::vector<std::vector<AppendSpan>> spans(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    if (!applies(n)) {
      continue;
    }
    size_t tuple_count = timeless[n].size() + timing[n].size();
    if (tuple_count > 0) {
      size_t bytes = tuple_count * kTupleWireBytes;
      if (config_.fault_injector != nullptr && !filtered) {
        // Dispatcher->Injector shipping is fallible: a lost send retries
        // with backoff. If the budget is exhausted the dispatcher escalates
        // to a slow reliable path (one more full send) — delivery never
        // fails, it only gets slower.
        Status s = RunWithRetry(
            config_.retry, [&] { return fabric_->TryMessage(ingest, n, bytes); },
            &fault_stats_.delivery_retry);
        if (!s.ok()) {
          fabric_->Message(ingest, n, bytes);
        }
      } else {
        fabric_->Message(ingest, n, bytes);
      }
    }
    for (const auto& [key, value] : timeless[n]) {
      stores_raw_[n]->InjectEdge(key, value, sn, &spans[n]);
    }
    transients_raw_[batch.stream][n]->AppendSlice(batch.seq, timing[n]);
  }
  if (!filtered) {
    state.profile.inject_ms += inject_probe.FinishMs();
  }

  // Stream index construction + locality-aware replication (§4.2). Restore
  // replay rebuilds only the target node's index portion; replication to
  // subscribers already happened during the original live injection.
  LatencyProbe index_probe;
  for (NodeId n = 0; n < nodes; ++n) {
    if (!applies(n)) {
      continue;
    }
    stream_indexes_raw_[batch.stream][n]->AddBatch(batch.seq, spans[n]);
    if (spans[n].empty() || filtered) {
      continue;
    }
    if (config_.locality_aware_index) {
      size_t index_bytes = spans[n].size() * sizeof(AppendSpan) + 32;
      for (NodeId sub : state.subscribers) {
        if (sub != n && fabric_->node_up(sub)) {
          fabric_->Message(n, sub, index_bytes);
          ++index_replications_;
        }
      }
    }
  }
  if (!filtered) {
    state.profile.index_ms += index_probe.FinishMs();
  }

  for (NodeId n = 0; n < nodes; ++n) {
    if (applies(n)) {
      coordinator_->ReportInjected(n, batch.stream, batch.seq);
    }
  }
  if (filtered) {
    return;
  }
  state.profile.tuples += batch.tuples.size();
  state.profile.batches += 1;

  if (batch_logger_) {
    batch_logger_(batch);
  }
}

bool Cluster::IsSelective(const Query& q, const std::vector<int>& plan) const {
  if (plan.empty()) {
    return true;
  }
  const TriplePattern& first = q.patterns[static_cast<size_t>(plan.front())];
  return !first.subject.is_var() || !first.object.is_var();
}

StatusOr<ExecContext> Cluster::BuildContext(
    const Registration& reg, StreamTime end_ms, ChargePolicy policy, NodeId home,
    std::vector<std::unique_ptr<NeighborSource>>* holders, DegradeState* degrade) {
  ExecContext ctx;
  ctx.strings = strings_;
  holders->push_back(std::make_unique<StoreSource>(
      stores_raw_, fabric_.get(), home, coordinator_->StableSn(), policy,
      &config_.retry, degrade));
  ctx.sources.push_back(holders->back().get());
  VectorTimestamp stable = coordinator_->StableVts();
  for (size_t w = 0; w < reg.query.windows.size(); ++w) {
    StreamId sid = reg.stream_ids[w];
    const WindowSpec& spec = reg.query.windows[w];
    BatchRange range;
    if (spec.absolute) {
      // Time-ontology one-shot scope [from, to): clamp to the stable prefix
      // so the read is consistent even while injection is in flight.
      range.lo = spec.from_ms / config_.batch_interval_ms;
      range.hi = (spec.to_ms - 1) / config_.batch_interval_ms;
      BatchSeq have = stable.Get(sid);
      if (have == kNoBatch || have < range.lo) {
        range.empty = true;
      } else if (range.hi > have) {
        range.hi = have;
      }
    } else {
      range = WindowBatches(end_ms, spec.range_ms, config_.batch_interval_ms);
    }
    holders->push_back(std::make_unique<WindowSource>(
        stores_raw_, stream_indexes_raw_[sid], transients_raw_[sid], fabric_.get(),
        home, range, policy, config_.locality_aware_index, &config_.retry,
        degrade));
    ctx.sources.push_back(holders->back().get());
  }
  return ctx;
}

NodeId Cluster::EffectiveHome(NodeId home) {
  if (fabric_->node_up(home)) {
    return home;
  }
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (fabric_->node_up(n)) {
      ++fault_stats_.reroutes;
      return n;
    }
  }
  return home;  // Nothing is up; callers will fail downstream.
}

void Cluster::ApplyDegrade(const DegradeState& degrade, QueryExecution* exec) {
  exec->partial = degrade.partial;
  exec->skipped_shards = degrade.skipped_shards;
  exec->fault_retries = degrade.retry.retries;
  exec->backoff_ms = degrade.retry.backoff_ns / 1e6;
  if (degrade.partial) {
    ++fault_stats_.degraded_executions;
  }
}

StatusOr<QueryExecution> Cluster::RunQuery(const Query& q,
                                           const std::vector<int>& plan,
                                           const ExecContext& ctx, NodeId home,
                                           bool fork_join, bool selective,
                                           SnapshotNum snapshot) {
  const NetworkModel& m = config_.network;
  const bool rdma = fabric_->transport() == Transport::kRdma;
  // Degraded clusters fork-join over the survivors only.
  const uint32_t live = fabric_->up_count();
  // A selective query forced into fork-join involves only the nodes its few
  // keys live on: migrating execution, no cluster-wide barrier.
  const bool migrating = fork_join && selective;

  StepHook hook;
  if (fork_join && live > 1) {
    hook = [&](const TriplePattern&, size_t rows_before, size_t cols_before,
               size_t /*rows_after*/) {
      double round = 0.0;
      if (!migrating && rows_before > kSmallStepRows) {
        // Scatter: ship the binding table partition-wise, one concurrent
        // round; charge the round's base plus the shipped volume.
        size_t bytes = rows_before * (cols_before + 1) * kBindingBytes + 16;
        if (rdma) {
          round = m.rdma_msg_base_ns +
                  m.rdma_msg_per_byte_ns * static_cast<double>(bytes);
        } else {
          round = m.tcp_msg_base_ns +
                  m.tcp_msg_per_byte_ns * static_cast<double>(bytes);
        }
      } else {
        // Tiny step: the continuation migrates with its rows in one hop.
        round = rdma ? kRdmaHopNs : kTcpHopNs;
      }
      SimCost::Add(round);
      FaultInjector* inj = config_.fault_injector;
      if (inj != nullptr && inj->FailMessage(home, home)) {
        // Lost scatter/migration round: the join barrier times out waiting
        // for the straggler, then the round is retransmitted.
        SimCost::Add(config_.retry.BackoffNs(1) + round);
      }
    };
  }

  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  auto table = ExecutePatterns(q, plan, ctx, hook);
  if (!table.ok()) {
    return table.status();
  }
  Status os = ApplyOptionals(q, ctx, &table.value());
  if (!os.ok()) {
    return os;
  }
  Status fs = ApplyFilters(q, ctx, &table.value());
  if (!fs.ok()) {
    return fs;
  }
  auto result = ProjectResult(q, ctx, table.value());
  if (!result.ok()) {
    return result.status();
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  double cpu_ns = wall.ElapsedNs();

  if (fork_join && live > 1 && !migrating) {
    // Full fork-join: dispatch into every node's task queue + join barrier.
    SimCost::Add(rdma ? kForkJoinSetupRdmaNs : kForkJoinSetupTcpNs);
    // Join: gather final bindings to the home node. Small results piggyback
    // on the per-step reply (selective queries effectively completed on one
    // node); only bulky results pay a full gather round.
    if (result->rows.size() > kSmallStepRows) {
      size_t bytes =
          result->rows.size() * (result->columns.size() + 1) * kBindingBytes + 16;
      if (rdma) {
        SimCost::Add(m.rdma_msg_base_ns +
                     m.rdma_msg_per_byte_ns * static_cast<double>(bytes));
      } else {
        SimCost::Add(m.tcp_msg_base_ns +
                     m.tcp_msg_per_byte_ns * static_cast<double>(bytes));
      }
    } else {
      SimCost::Add(rdma ? kRdmaHopNs : kTcpHopNs);
    }
    cpu_ns /= std::pow(static_cast<double>(live),
                       config_.fork_join_parallel_exponent);
  } else if (migrating && live > 1) {
    SimCost::Add(rdma ? kRdmaHopNs : kTcpHopNs);  // Final reply hop.
  }
  double net_ns = SimCost::TotalNs() - sim_before;

  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = cpu_ns / 1e6;
  exec.net_ms = net_ns / 1e6;
  exec.fork_join = fork_join;
  exec.snapshot = snapshot;
  return exec;
}

StatusOr<QueryExecution> Cluster::ExecuteUnion(const Registration& reg,
                                               StreamTime end_ms,
                                               SnapshotNum snapshot) {
  QueryExecution total;
  total.snapshot = snapshot;
  total.window_end_ms = end_ms;
  NodeId home = EffectiveHome(reg.home);
  const bool degraded = fabric_->AnyNodeDown();
  DegradeState degrade;
  for (const std::vector<TriplePattern>& branch : reg.query.unions) {
    Query bq = reg.query;
    bq.patterns = branch;
    bq.unions.clear();
    // Modifiers apply once, after the branches are concatenated.
    bq.distinct = false;
    bq.order_by.clear();
    bq.limit = 0;
    Registration breg;
    breg.query = bq;
    breg.home = reg.home;
    breg.stream_ids = reg.stream_ids;

    std::vector<std::unique_ptr<NeighborSource>> plan_holders;
    auto plan_ctx = BuildContext(breg, end_ms, ChargePolicy::kNoCharge, home,
                                 &plan_holders, nullptr);
    if (!plan_ctx.ok()) {
      return plan_ctx.status();
    }
    std::vector<int> plan = PlanQuery(bq, *plan_ctx);
    bool selective = IsSelective(bq, plan);
    // A quarantined shard reroutes in-place queries to fork-join over the
    // survivors (graceful degradation).
    bool fork_join = config_.force_fork_join ||
                     ((!selective || degraded) && !config_.force_in_place);
    std::vector<std::unique_ptr<NeighborSource>> holders;
    auto ctx = BuildContext(
        breg, end_ms, fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
        home, &holders, &degrade);
    if (!ctx.ok()) {
      return ctx.status();
    }
    auto exec = RunQuery(bq, plan, *ctx, home, fork_join, selective, snapshot);
    if (!exec.ok()) {
      return exec.status();
    }
    total.cpu_ms += exec->cpu_ms;
    total.net_ms += exec->net_ms;
    total.fork_join = total.fork_join || exec->fork_join;
    if (total.result.columns.empty()) {
      total.result.columns = exec->result.columns;
    }
    for (auto& row : exec->result.rows) {
      total.result.rows.push_back(std::move(row));
    }
  }
  ExecContext finalize_ctx;
  finalize_ctx.strings = strings_;
  Status fin = FinalizeSolution(reg.query, finalize_ctx, &total.result);
  if (!fin.ok()) {
    return fin;
  }
  ApplyDegrade(degrade, &total);
  return total;
}

StatusOr<QueryExecution> Cluster::OneShot(std::string_view text, NodeId home) {
  auto q = ParseQuery(text, strings_);
  if (!q.ok()) {
    return q.status();
  }
  return OneShotParsed(*q, home);
}

StatusOr<QueryExecution> Cluster::OneShotParsed(const Query& q, NodeId home) {
  if (q.continuous) {
    return Status::InvalidArgument("continuous query submitted as one-shot");
  }
  for (const WindowSpec& w : q.windows) {
    if (!w.absolute) {
      return Status::InvalidArgument(
          "one-shot query may only use absolute [FROM..TO] stream scopes");
    }
  }
  SnapshotNum snapshot = coordinator_->StableSn();

  // Plan against a charge-free view, then execute with charging.
  std::vector<std::unique_ptr<NeighborSource>> holders;
  Registration reg;
  reg.query = q;
  reg.home = home;
  for (const WindowSpec& w : q.windows) {
    auto sid = FindStream(w.stream_name);
    if (!sid.ok()) {
      return sid.status();
    }
    reg.stream_ids.push_back(*sid);
  }
  if (!q.unions.empty()) {
    return ExecuteUnion(reg, 0, snapshot);
  }
  NodeId exec_home = EffectiveHome(home);
  const bool degraded = fabric_->AnyNodeDown();
  DegradeState degrade;
  auto plan_ctx = BuildContext(reg, 0, ChargePolicy::kNoCharge, exec_home,
                               &holders, nullptr);
  if (!plan_ctx.ok()) {
    return plan_ctx.status();
  }
  std::vector<int> plan = PlanQuery(q, *plan_ctx);
  bool selective = IsSelective(q, plan);
  bool fork_join = config_.force_fork_join ||
                   ((!selective || degraded) && !config_.force_in_place);

  std::vector<std::unique_ptr<NeighborSource>> exec_holders;
  auto ctx = BuildContext(reg, 0,
                          fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
                          exec_home, &exec_holders, &degrade);
  if (!ctx.ok()) {
    return ctx.status();
  }
  auto exec = RunQuery(q, plan, *ctx, exec_home, fork_join, selective, snapshot);
  if (exec.ok()) {
    ApplyDegrade(degrade, &exec.value());
  }
  return exec;
}

StatusOr<Cluster::ContinuousHandle> Cluster::RegisterContinuous(
    std::string_view text, NodeId home) {
  auto q = ParseQuery(text, strings_);
  if (!q.ok()) {
    return q.status();
  }
  return RegisterContinuousParsed(*q, home);
}

StatusOr<Cluster::ContinuousHandle> Cluster::RegisterContinuousParsed(const Query& q,
                                                                      NodeId home) {
  if (q.windows.empty()) {
    return Status::InvalidArgument("continuous query must declare stream windows");
  }
  Registration reg;
  reg.query = q;
  reg.home = home % config_.nodes;
  for (const WindowSpec& w : q.windows) {
    auto sid = FindStream(w.stream_name);
    if (!sid.ok()) {
      return sid.status();
    }
    reg.stream_ids.push_back(*sid);
    // Locality-aware partitioning: replicate this stream's index to the node
    // where the query runs, from now on (Fig. 9).
    streams_[*sid].subscribers.insert(reg.home);
  }
  registrations_.push_back(std::move(reg));
  return static_cast<ContinuousHandle>(registrations_.size() - 1);
}

const Query& Cluster::ContinuousQueryOf(ContinuousHandle h) const {
  return registrations_[h].query;
}

bool Cluster::WindowReady(ContinuousHandle h, StreamTime end_ms) const {
  const Registration& reg = registrations_[h];
  VectorTimestamp stable = coordinator_->StableVts();
  for (size_t w = 0; w < reg.query.windows.size(); ++w) {
    BatchRange range = WindowBatches(end_ms, reg.query.windows[w].range_ms,
                                     config_.batch_interval_ms);
    if (range.empty) {
      continue;
    }
    BatchSeq have = stable.Get(reg.stream_ids[w]);
    if (have == kNoBatch || have < range.hi) {
      return false;
    }
  }
  return true;
}

StatusOr<QueryExecution> Cluster::ExecuteContinuousAt(ContinuousHandle h,
                                                      StreamTime end_ms) {
  if (h >= registrations_.size()) {
    return Status::NotFound("unknown continuous query handle");
  }
  if (!WindowReady(h, end_ms)) {
    return Status::FailedPrecondition(
        "stream windows not ready (Stable_VTS behind window end)");
  }
  Registration& reg = registrations_[h];
  if (!reg.query.unions.empty()) {
    auto exec = ExecuteUnion(reg, end_ms, coordinator_->StableSn());
    if (exec.ok()) {
      exec->window_end_ms = end_ms;
    }
    return exec;
  }

  // Degradation reroute: a registration whose home node is down executes on
  // the first surviving node instead of crashing.
  NodeId home = EffectiveHome(reg.home);
  const bool degraded = fabric_->AnyNodeDown();
  DegradeState degrade;

  // Plan once, at the first triggered execution (stored-procedure style).
  std::call_once(*reg.plan_once, [&] {
    std::vector<std::unique_ptr<NeighborSource>> plan_holders;
    auto plan_ctx = BuildContext(reg, end_ms, ChargePolicy::kNoCharge, home,
                                 &plan_holders, nullptr);
    if (plan_ctx.ok()) {
      reg.cached_plan = PlanQuery(reg.query, *plan_ctx);
      reg.cached_selective = IsSelective(reg.query, reg.cached_plan);
    }
  });
  if (reg.cached_plan.size() != reg.query.patterns.size()) {
    return Status::Internal("continuous query has no cached plan");
  }
  bool selective = reg.cached_selective;
  bool fork_join = config_.force_fork_join ||
                   ((!selective || degraded) && !config_.force_in_place);

  std::vector<std::unique_ptr<NeighborSource>> holders;
  auto ctx = BuildContext(reg, end_ms,
                          fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
                          home, &holders, &degrade);
  if (!ctx.ok()) {
    return ctx.status();
  }
  auto exec = RunQuery(reg.query, reg.cached_plan, *ctx, home, fork_join,
                       selective, coordinator_->StableSn());
  if (exec.ok()) {
    exec->window_end_ms = end_ms;
    ApplyDegrade(degrade, &exec.value());
  }
  return exec;
}

void Cluster::RunMaintenance(StreamTime live_horizon_ms) {
  SnapshotNum floor = coordinator_->CollapseFloor();
  for (GStore* store : stores_raw_) {
    store->CollapseBelow(floor);
  }
  BatchSeq min_live = live_horizon_ms / config_.batch_interval_ms;
  for (size_t s = 0; s < streams_.size(); ++s) {
    for (NodeId n = 0; n < config_.nodes; ++n) {
      stream_indexes_raw_[s][n]->EvictBefore(min_live);
      transients_raw_[s][n]->SetGcHorizon(min_live);
      transients_raw_[s][n]->RunGc();
    }
  }
}

Cluster::InjectionProfile Cluster::injection_profile(StreamId stream) const {
  if (stream >= streams_.size()) {
    return {};
  }
  return streams_[stream].profile;
}

Cluster::MemoryReport Cluster::Memory() const {
  MemoryReport r;
  for (const auto& store : stores_) {
    r.store_bytes += store->MemoryBytes();
    r.snapshot_meta_bytes += store->SnapshotMetadataBytes();
    r.stream_appended_edges += store->StreamAppendedEdges();
  }
  for (size_t s = 0; s < streams_.size(); ++s) {
    size_t stream_bytes = 0;
    for (NodeId n = 0; n < config_.nodes; ++n) {
      stream_bytes += stream_indexes_raw_[s][n]->MemoryBytes();
      r.transient_bytes += transients_raw_[s][n]->MemoryBytes();
    }
    // Subscribed replicas duplicate the whole stream's index per subscriber
    // (minus the subscriber's own local portion, ignored here).
    size_t replicas = streams_[s].subscribers.size();
    r.stream_index_bytes += stream_bytes * (1 + replicas);
    r.stream_index_replicas += replicas;
  }
  r.string_server_bytes = strings_->MemoryBytes();
  return r;
}

size_t Cluster::StreamIndexBytes(StreamId stream) const {
  size_t bytes = 0;
  if (stream < stream_indexes_raw_.size()) {
    for (const StreamIndex* idx : stream_indexes_raw_[stream]) {
      bytes += idx->MemoryBytes();
    }
  }
  return bytes;
}

size_t Cluster::TransientBytes(StreamId stream) const {
  size_t bytes = 0;
  if (stream < transients_raw_.size()) {
    for (const TransientStore* ts : transients_raw_[stream]) {
      bytes += ts->MemoryBytes();
    }
  }
  return bytes;
}

void Cluster::SetBatchLogger(std::function<void(const StreamBatch&)> logger) {
  batch_logger_ = std::move(logger);
}

Status Cluster::ReplayBatch(const StreamBatch& batch) {
  if (batch.stream >= streams_.size()) {
    return Status::NotFound("unknown stream id in replayed batch");
  }
  StreamAdaptor* adaptor = streams_[batch.stream].adaptor.get();
  if (batch.seq < delivered_next_[batch.stream]) {
    // At-least-once replay (checkpoint log + upstream backup overlap):
    // already-injected batches are suppressed by the sequence gate.
    ++fault_stats_.duplicates_suppressed;
    return Status::Ok();
  }
  // Bring the adaptor level with the replay so later live feeding continues
  // from the right sequence. Missing intermediate batches are injected empty.
  std::vector<StreamBatch> fill;
  adaptor->AdvanceTo(batch.seq * config_.batch_interval_ms, &fill);
  for (const StreamBatch& b : fill) {
    if (b.seq < delivered_next_[b.stream]) {
      continue;
    }
    InjectBatch(b);
    delivered_next_[b.stream] = b.seq + 1;
  }
  InjectBatch(batch);
  delivered_next_[batch.stream] = batch.seq + 1;
  adaptor->FastForward(batch.seq + 1);
  return Status::Ok();
}

bool Cluster::NodeUp(NodeId n) const { return fabric_->node_up(n); }

uint32_t Cluster::UpNodeCount() const { return fabric_->up_count(); }

BatchSeq Cluster::NextSeq(StreamId stream) const {
  if (stream >= streams_.size()) {
    return 0;
  }
  return streams_[stream].adaptor->next_seq();
}

Status Cluster::CrashNode(NodeId node) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (!fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is already down");
  }
  if (fabric_->up_count() <= 1) {
    return Status::FailedPrecondition("cannot crash the last live node");
  }
  fabric_->SetNodeUp(node, false);
  // Excluded from Stable_VTS so surviving nodes keep triggering windows, and
  // its injection progress is forgotten so restore can re-report from seq 0.
  coordinator_->SetNodeActive(node, false);
  coordinator_->ResetNode(node);
  // Volatile state dies with the process: the shard, its stream-index
  // portion, and its transient slices.
  stores_[node] = std::make_unique<GStore>(node);
  stores_raw_[node] = stores_[node].get();
  for (size_t s = 0; s < streams_.size(); ++s) {
    stream_indexes_[s][node] = std::make_unique<StreamIndex>();
    stream_indexes_raw_[s][node] = stream_indexes_[s][node].get();
    transients_[s][node] =
        std::make_unique<TransientStore>(config_.transient_budget_bytes);
    transients_raw_[s][node] = transients_[s][node].get();
  }
  ++fault_stats_.crashes;
  return Status::Ok();
}

void Cluster::SetCrashHandler(std::function<void(const CrashEvent&)> handler) {
  crash_handler_ = std::move(handler);
}

void Cluster::SetUpstreamBuffer(UpstreamBuffer* upstream) {
  upstream_ = upstream;
}

Status Cluster::LoadBaseForNode(NodeId node, std::span<const Triple> triples) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is live; crash it before restoring");
  }
  for (const Triple& t : triples) {
    if (OwnerOf(t.subject) == node) {
      stores_raw_[node]->LoadEdge(Key(t.subject, t.predicate, Dir::kOut),
                                  t.object);
    }
    if (OwnerOf(t.object) == node) {
      stores_raw_[node]->LoadEdge(Key(t.object, t.predicate, Dir::kIn),
                                  t.subject);
    }
  }
  return Status::Ok();
}

Status Cluster::ReplayBatchForNode(NodeId node, const StreamBatch& batch) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (batch.stream >= streams_.size()) {
    return Status::NotFound("unknown stream id in replayed batch");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is live; crash it before restoring");
  }
  BatchSeq prev = coordinator_->LocalVts(node).Get(batch.stream);
  BatchSeq next = prev == kNoBatch ? 0 : prev + 1;
  if (batch.seq < next) {
    // Overlap between the checkpoint log and the upstream-backup tail.
    ++fault_stats_.duplicates_suppressed;
    return Status::Ok();
  }
  if (batch.seq > next) {
    return Status::FailedPrecondition(
        "gap in restore replay: expected batch " + std::to_string(next) +
        " of stream " + std::to_string(batch.stream) + ", got " +
        std::to_string(batch.seq));
  }
  InjectBatch(batch, static_cast<int>(node));
  return Status::Ok();
}

Status Cluster::FinishNodeRestore(NodeId node) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is already live");
  }
  // The node may only rejoin once its replayed progress covers the survivors'
  // stable frontier; reactivating early would regress Stable_VTS and stall
  // (or un-trigger) windows that already fired.
  VectorTimestamp stable = coordinator_->StableVts();
  VectorTimestamp local = coordinator_->LocalVts(node);
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    BatchSeq need = stable.Get(s);
    if (need == kNoBatch) {
      continue;
    }
    BatchSeq have = local.Get(s);
    if (have == kNoBatch || have < need) {
      return Status::FailedPrecondition(
          "node " + std::to_string(node) + " lags stream " + std::to_string(s) +
          ": restored through " +
          (have == kNoBatch ? std::string("nothing") : std::to_string(have)) +
          ", survivors at " + std::to_string(need));
    }
  }
  fabric_->SetNodeUp(node, true);
  coordinator_->SetNodeActive(node, true);
  return Status::Ok();
}

}  // namespace wukongs
