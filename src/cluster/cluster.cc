#include "src/cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/common/deadline.h"
#include "src/common/test_hooks.h"
#include "src/fault/upstream_buffer.h"
#include "src/sparql/template.h"
#include "src/testkit/reference_oracle.h"
#include "src/testkit/schedule_controller.h"

namespace wukongs {
namespace {

// Fork-join steps moving fewer rows than this piggyback the continuation on a
// single forwarded message (migrating execution); larger steps pay a full
// scatter/gather round plus volume.
constexpr size_t kSmallStepRows = 64;
constexpr double kRdmaHopNs = 1000.0;
constexpr double kTcpHopNs = 5000.0;

// Per-query coordination cost of a full fork-join (dispatch into every
// node's task queue + join barrier). Selective queries forced into fork-join
// degrade to *migrating execution* instead: the continuation hops between
// the (few) nodes holding its data, paying per-step hops but no cluster-wide
// barrier — which is why the paper's non-RDMA mode barely affects L1-L3.
constexpr double kForkJoinSetupRdmaNs = 10000.0;
constexpr double kForkJoinSetupTcpNs = 40000.0;

constexpr size_t kBindingBytes = sizeof(VertexId);
constexpr size_t kTupleWireBytes = 24;

// Observability span helper (counter bumps use obs::Bump, found by ADL):
// compiled out entirely under -DWUKONGS_OBS_DISABLED, a single predictable
// branch when the runtime switch (null tracer in ClusterConfig) is off.
obs::Tracer::Span TraceSpan(obs::Tracer* tracer, const char* cat,
                            const char* name, uint32_t tid) {
  if constexpr (obs::kCompiledIn) {
    if (tracer != nullptr) {
      return tracer->StartSpan(cat, name, tid);
    }
  } else {
    (void)tracer;
    (void)cat;
    (void)name;
    (void)tid;
  }
  return {};
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config, StringServer* shared_strings)
    : config_(config),
      owned_strings_(shared_strings == nullptr ? std::make_unique<StringServer>()
                                               : nullptr),
      strings_(shared_strings == nullptr ? owned_strings_.get() : shared_strings),
      fabric_(std::make_unique<Fabric>(config.nodes, config.network,
                                       config.transport)),
      coordinator_(std::make_unique<Coordinator>(
          config.nodes, config.reserved_snapshots, config.batches_per_sn,
          config.overload.max_plan_extensions)),
      stream_stats_(config.replan.rate_window_ms),
      shard_map_(config.nodes),
      shedder_(config.overload.shed),
      backlog_(config.nodes) {
  assert(config_.nodes >= 1);
  fabric_->set_fault_injector(config_.fault_injector);
  stores_.reserve(fabric_->node_capacity());
  stores_raw_.reserve(fabric_->node_capacity());
  for (NodeId n = 0; n < config_.nodes; ++n) {
    stores_.push_back(std::make_unique<GStore>(n));
    stores_raw_.push_back(stores_.back().get());
  }
  if (config_.overload.enabled && config_.overload.failure_detector) {
    health_ =
        std::make_unique<FailureDetector>(config_.nodes, config_.overload.phi);
  }
  if (config_.straggler.enabled) {
    straggler_ =
        std::make_unique<StragglerDetector>(config_.nodes, config_.straggler);
  }
  service_hist_.resize(config_.nodes);
  service_hist_metrics_.resize(config_.nodes, nullptr);
  if constexpr (obs::kCompiledIn) {
    tracer_ = config_.tracer;
    if (obs::MetricsRegistry* m = config_.metrics; m != nullptr) {
      obs_.door_shed_tuples = m->GetCounter("wukongs_door_shed_tuples_total");
      obs_.injector_shed_edges =
          m->GetCounter("wukongs_injector_shed_edges_total");
      obs_.timing_edges_lost = m->GetCounter("wukongs_timing_edges_lost_total");
      obs_.feed_rejections = m->GetCounter("wukongs_feed_rejections_total");
      obs_.credit_stalls = m->GetCounter("wukongs_credit_stalls_total");
      obs_.plan_stalls = m->GetCounter("wukongs_plan_stalls_total");
      obs_.append_pressure_events =
          m->GetCounter("wukongs_append_pressure_events_total");
      obs_.backlog_deferred = m->GetCounter("wukongs_backlog_deferred_total");
      obs_.backlog_drained = m->GetCounter("wukongs_backlog_drained_total");
      obs_.quarantines = m->GetCounter("wukongs_quarantines_total");
      obs_.reactivations = m->GetCounter("wukongs_reactivations_total");
      obs_.heartbeats = m->GetCounter("wukongs_heartbeats_total");
      obs_.batches_injected = m->GetCounter("wukongs_batches_injected_total");
      obs_.tuples_injected = m->GetCounter("wukongs_tuples_injected_total");
      obs_.queries_oneshot = m->GetCounter("wukongs_queries_oneshot_total");
      obs_.queries_continuous =
          m->GetCounter("wukongs_queries_continuous_total");
      obs_.fault_retries = m->GetCounter("wukongs_fault_retries_total");
      obs_.backoff_us = m->GetCounter("wukongs_fault_backoff_us_total");
      obs_.batches_redelivered =
          m->GetCounter("wukongs_batches_redelivered_total");
      obs_.duplicates_suppressed =
          m->GetCounter("wukongs_duplicates_suppressed_total");
      obs_.crashes = m->GetCounter("wukongs_crashes_total");
      obs_.reroutes = m->GetCounter("wukongs_reroutes_total");
      obs_.delta_hits = m->GetCounter("wukongs_delta_cache_hits_total");
      obs_.delta_misses = m->GetCounter("wukongs_delta_cache_misses_total");
      obs_.delta_invalidations =
          m->GetCounter("wukongs_delta_cache_invalidations_total");
      obs_.delta_epoch_flushes =
          m->GetCounter("wukongs_delta_cache_epoch_flushes_total");
      obs_.delta_bypasses = m->GetCounter("wukongs_delta_cache_bypasses_total");
      obs_.degraded_executions =
          m->GetCounter("wukongs_degraded_executions_total");
      obs_.reconfig_moves_started =
          m->GetCounter("wukongs_reconfig_moves_started_total");
      obs_.reconfig_moves_committed =
          m->GetCounter("wukongs_reconfig_moves_committed_total");
      obs_.reconfig_moves_aborted =
          m->GetCounter("wukongs_reconfig_moves_aborted_total");
      obs_.reconfig_edges_copied =
          m->GetCounter("wukongs_reconfig_edges_copied_total");
      obs_.reconfig_dual_applied_edges =
          m->GetCounter("wukongs_reconfig_dual_applied_edges_total");
      obs_.reconfig_rehomed_registrations =
          m->GetCounter("wukongs_reconfig_rehomed_registrations_total");
      obs_.reconfig_stale_edges_purged =
          m->GetCounter("wukongs_reconfig_stale_edges_purged_total");
      obs_.hedge_issued = m->GetCounter("wukongs_hedge_issued_total");
      obs_.hedge_wins = m->GetCounter("wukongs_hedge_backup_wins_total");
      obs_.hedge_cancelled = m->GetCounter("wukongs_hedge_cancelled_total");
      obs_.hedge_duplicates_suppressed =
          m->GetCounter("wukongs_hedge_duplicates_suppressed_total");
      obs_.deadline_expired = m->GetCounter("wukongs_deadline_expired_total");
      obs_.deadline_skipped_reads =
          m->GetCounter("wukongs_deadline_skipped_reads_total");
      obs_.deadline_cancelled_steps =
          m->GetCounter("wukongs_deadline_cancelled_steps_total");
      obs_.straggler_demotions =
          m->GetCounter("wukongs_straggler_demotions_total");
      obs_.straggler_promotions =
          m->GetCounter("wukongs_straggler_promotions_total");
      obs_.mqo_grouped_registrations =
          m->GetCounter("wukongs_mqo_grouped_registrations_total");
      obs_.mqo_groups_formed = m->GetCounter("wukongs_mqo_groups_formed_total");
      obs_.mqo_groups_dissolved =
          m->GetCounter("wukongs_mqo_groups_dissolved_total");
      obs_.mqo_shared_evals = m->GetCounter("wukongs_mqo_shared_evals_total");
      obs_.mqo_fanout_served = m->GetCounter("wukongs_mqo_fanout_served_total");
      obs_.mqo_fallbacks =
          m->GetCounter("wukongs_mqo_independent_fallbacks_total");
      obs_.replan_checks = m->GetCounter("wukongs_replan_checks_total");
      obs_.replan_drift_triggers =
          m->GetCounter("wukongs_replan_drift_triggers_total");
      obs_.replan_cutovers = m->GetCounter("wukongs_replan_cutovers_total");
      obs_.replan_parity_failures =
          m->GetCounter("wukongs_replan_parity_failures_total");
      obs_.replan_budget_overruns =
          m->GetCounter("wukongs_replan_budget_overruns_total");
      obs_.replan_pins = m->GetCounter("wukongs_replan_pins_total");
      obs_.delta_plan_flushes =
          m->GetCounter("wukongs_delta_cache_plan_flushes_total");
      for (NodeId n = 0; n < config_.nodes; ++n) {
        service_hist_metrics_[n] =
            m->GetHistogram(obs::MetricsRegistry::Labeled(
                "wukongs_node_service_latency_ns",
                {{"node", std::to_string(n)}}));
      }
    }
  }
}

Cluster::~Cluster() = default;

StatusOr<StreamId> Cluster::DefineStream(
    const std::string& name, const std::vector<std::string>& timing_predicates,
    int shed_priority) {
  if (stream_names_.count(name) > 0) {
    return Status::AlreadyExists("stream " + name + " already defined");
  }
  StreamId id = static_cast<StreamId>(streams_.size());
  std::unordered_set<PredicateId> timing;
  for (const std::string& p : timing_predicates) {
    timing.insert(strings_->InternPredicate(p));
  }
  StreamState state;
  state.name = name;
  state.adaptor = std::make_unique<StreamAdaptor>(id, config_.batch_interval_ms,
                                                  std::move(timing));
  state.ingest_node = static_cast<NodeId>(id % config_.nodes);
  state.shed_priority = shed_priority;
  if constexpr (obs::kCompiledIn) {
    if (obs::MetricsRegistry* m = config_.metrics; m != nullptr) {
      state.obs_batches = m->GetCounter(obs::MetricsRegistry::Labeled(
          "wukongs_stream_batches_injected_total", {{"stream", name}}));
      state.obs_tuples = m->GetCounter(obs::MetricsRegistry::Labeled(
          "wukongs_stream_tuples_injected_total", {{"stream", name}}));
    }
  }
  streams_.push_back(std::move(state));
  stream_names_.emplace(name, id);

  stream_indexes_.emplace_back();
  transients_.emplace_back();
  stream_indexes_raw_.emplace_back();
  transients_raw_.emplace_back();
  for (NodeId n = 0; n < config_.nodes; ++n) {
    stream_indexes_.back().push_back(std::make_unique<StreamIndex>());
    stream_indexes_raw_.back().push_back(stream_indexes_.back().back().get());
    transients_.back().push_back(
        std::make_unique<TransientStore>(config_.transient_budget_bytes));
    transients_raw_.back().push_back(transients_.back().back().get());
    WireEvictionListeners(id, n);
  }
  coordinator_->RegisterStream(id);
  delivered_next_.push_back(0);
  injected_window_edges_.emplace_back(config_.nodes, 0);
  {
    std::lock_guard lock(delta_mu_);
    delta_caches_by_stream_.emplace_back();
  }
  return id;
}

void Cluster::WireEvictionListeners(StreamId stream, NodeId node) {
  // GC invalidation hooks (§5.9): when a slice is reclaimed on any node, the
  // delta caches fed by this stream must retire the contributions that were
  // (partly) sourced from it.
  auto hook = [this, stream](BatchSeq min_live) {
    NotifySliceEviction(stream, min_live);
  };
  transients_raw_[stream][node]->SetEvictionListener(hook);
  stream_indexes_raw_[stream][node]->SetEvictionListener(hook);
}

void Cluster::NotifySliceEviction(StreamId stream, BatchSeq min_live) {
  std::vector<DeltaCache*> caches;
  {
    std::lock_guard lock(delta_mu_);
    if (stream < delta_caches_by_stream_.size()) {
      caches = delta_caches_by_stream_[stream];
    }
  }
  for (DeltaCache* cache : caches) {
    Bump(obs_.delta_invalidations, cache->InvalidateBelow(min_live));
  }
  BumpMqoGeneration();
}

uint64_t Cluster::StoredEpoch() const {
  uint64_t epoch = 0;
  for (const auto& store : stores_) {
    epoch += store->EdgeCountTotal();
  }
  return epoch;
}

StatusOr<StreamId> Cluster::FindStream(const std::string& name) const {
  auto it = stream_names_.find(name);
  if (it == stream_names_.end()) {
    return Status::NotFound("unknown stream " + name);
  }
  return it->second;
}

void Cluster::LoadBase(std::span<const Triple> triples) {
  for (const Triple& t : triples) {
    stores_raw_[OwnerOf(t.subject)]->LoadEdge(Key(t.subject, t.predicate, Dir::kOut),
                                              t.object);
    stores_raw_[OwnerOf(t.object)]->LoadEdge(Key(t.object, t.predicate, Dir::kIn),
                                             t.subject);
  }
}

Status Cluster::FeedStream(StreamId stream, const StreamTupleVec& tuples) {
  if (stream >= streams_.size()) {
    return Status::NotFound("unknown stream id");
  }
  if (config_.overload.enabled) {
    // Credits or plan extensions may have freed since the last pump.
    PumpPending(stream);
    if (streams_[stream].pending.size() >=
        config_.overload.pending_queue_capacity) {
      {
        std::lock_guard lock(overload_mu_);
        ++overload_stats_.feed_rejections;
      }
      Bump(obs_.feed_rejections);
      // The backpressure terminus: the feeder gets a retryable rejection
      // instead of the cluster buffering without bound.
      return Status::ResourceExhausted("stream " + streams_[stream].name +
                                       " backpressured: pending queue full");
    }
  }
  std::vector<StreamBatch> batches;
  auto span = TraceSpan(tracer_, "ingest", "ingest/adaptor",
                        streams_[stream].ingest_node);
  Status s = streams_[stream].adaptor->Ingest(tuples, &batches);
  span.Arg("stream", static_cast<uint64_t>(stream))
      .Arg("tuples", static_cast<uint64_t>(tuples.size()))
      .Arg("batches", static_cast<uint64_t>(batches.size()));
  span.End();
  if (!s.ok()) {
    return s;
  }
  for (StreamBatch& b : batches) {
    EnqueueBatch(std::move(b));
  }
  return Status::Ok();
}

void Cluster::AdvanceStreams(StreamTime now_ms) {
  // Inject across streams in batch-sequence order so snapshots stay
  // contiguous on keys shared between streams (minimal cross-stream skew —
  // the paper's Injector achieves the same by stalling past the announced
  // SN-VTS plan).
  std::vector<StreamBatch> batches;
  for (StreamState& state : streams_) {
    state.adaptor->AdvanceTo(now_ms, &batches);
  }
  std::stable_sort(batches.begin(), batches.end(),
                   [](const StreamBatch& a, const StreamBatch& b) {
                     return a.seq < b.seq;
                   });
  if (config_.schedule != nullptr) {
    // Schedule fuzzing: permute cross-stream delivery order (per-stream seq
    // order is preserved — the adaptor guarantees in-order streams, but
    // nothing orders deliveries *across* streams, so any interleaving here
    // is one the real dispatcher could produce).
    config_.schedule->PermuteBatchOrder(&batches);
  }
  for (StreamBatch& b : batches) {
    EnqueueBatch(std::move(b));
  }
  TickHealth(now_ms);
}

void Cluster::EnqueueBatch(StreamBatch&& batch) {
  const StreamId sid = batch.stream;
  StreamState& state = streams_[sid];
  const size_t timing = CountTimingTuples(batch);
  if (timing > 0) {
    std::lock_guard lock(overload_mu_);
    state.shed[batch.seq].timing_tuples += timing;
  }
  if (!config_.overload.enabled) {
    DeliverBatch(batch);
    return;
  }
  if (config_.overload.shed_timing && timing > 0) {
    // Pressure is the worse of the decaying append-failure signal and the
    // door queue's occupancy, so shedding kicks in before the queue bounces
    // the feeder outright.
    const double occupancy =
        config_.overload.pending_queue_capacity > 0
            ? static_cast<double>(state.pending.size()) /
                  static_cast<double>(config_.overload.pending_queue_capacity)
            : 0.0;
    const double pressure = std::max(state.pressure.level(), occupancy);
    const double keep = shedder_.KeepFraction(pressure, state.shed_priority);
    if (keep < 1.0) {
      const size_t max_keep =
          static_cast<size_t>(keep * static_cast<double>(timing));
      const size_t shed = ShedTimingSuffix(&batch, max_keep);
      if (shed > 0) {
        Bump(obs_.door_shed_tuples, shed);
        std::lock_guard lock(overload_mu_);
        state.shed[batch.seq].door_shed_tuples += shed;
        overload_stats_.door_shed_tuples += shed;
      }
    }
  }
  state.pending.push_back(std::move(batch));
  PumpPending(sid);
}

bool Cluster::HasCredit(StreamId stream) const {
  const size_t credits = config_.overload.credits_per_stream;
  if (credits == 0) {
    return true;
  }
  // In flight = injected but not yet stable. The queued batch would join
  // them, so the pump holds once the frontier runs `credits` ahead.
  const BatchSeq stable = coordinator_->StableVts().Get(stream);
  const uint64_t stable_next = stable == kNoBatch ? 0 : stable + 1;
  const uint64_t delivered = delivered_next_[stream];
  const uint64_t in_flight = delivered > stable_next ? delivered - stable_next : 0;
  return in_flight < credits;
}

void Cluster::PumpPending(StreamId stream) {
  if (!config_.overload.enabled) {
    return;
  }
  StreamState& state = streams_[stream];
  while (!state.pending.empty()) {
    if (!HasCredit(stream)) {
      Bump(obs_.credit_stalls);
      std::lock_guard lock(overload_mu_);
      ++overload_stats_.credit_stalls;
      break;
    }
    if (!coordinator_->CanPlanSnFor(stream, state.pending.front().seq)) {
      // The injector stalls rather than extending the SN-VTS plan past the
      // cap (§4.3's bounded-scalarization discipline under overload).
      Bump(obs_.plan_stalls);
      std::lock_guard lock(overload_mu_);
      ++overload_stats_.plan_stalls;
      break;
    }
    StreamBatch batch = std::move(state.pending.front());
    state.pending.pop_front();
    DeliverBatch(batch);
  }
}

void Cluster::DeliverBatch(const StreamBatch& batch) {
  // Upstream backup (§5): the source keeps the batch until it is acked as
  // durably checkpointed — the recovery path replays this tail.
  if (upstream_ != nullptr) {
    upstream_->Retain(batch);
  }

  FaultInjector* inj = config_.fault_injector;
  if (inj != nullptr) {
    if (auto crash = inj->TakeCrash(batch.stream, batch.seq)) {
      // The crash fires before this delivery: the node misses this batch and
      // everything after it until restored.
      Status s = CrashNode(crash->node);
      if (s.ok() && crash_handler_) {
        crash_handler_(*crash);
      }
    }
  }

  BatchFate fate = inj != nullptr ? inj->FateOf(batch.stream, batch.seq)
                                  : BatchFate::kDeliver;
  if (fate == BatchFate::kDrop) {
    // First delivery lost on the wire. The upstream notices the missing ack
    // after one backoff interval and retransmits; delivery order is
    // preserved, so the cost is pure added latency.
    double wait = config_.retry.BackoffNs(1);
    SimCost::Add(wait);
    fault_stats_.delivery_retry.backoff_ns += wait;
    ++fault_stats_.delivery_retry.retries;
    ++fault_stats_.batches_redelivered;
    Bump(obs_.batches_redelivered);
    Bump(obs_.fault_retries);
    Bump(obs_.backoff_us, static_cast<uint64_t>(wait / 1e3));
  } else if (fate == BatchFate::kDelay) {
    SimCost::Add(inj->schedule().batch_delay_ns);
    ++fault_stats_.batches_delayed;
  }

  // At-least-once delivery -> exactly-once injection: the sequence gate
  // swallows the duplicate copy (and any replay overlap).
  const int copies = fate == BatchFate::kDuplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    if (batch.seq < delivered_next_[batch.stream]) {
      ++fault_stats_.duplicates_suppressed;
      Bump(obs_.duplicates_suppressed);
      continue;
    }
    InjectBatch(batch);
    delivered_next_[batch.stream] = batch.seq + 1;
  }
  // The delivered frontier (and possibly Stable_VTS) advanced: a pending
  // migration whose transfer finished may now satisfy the cutover barrier.
  // Must run *after* the delivered_next_ bump — the barrier compares the plan
  // SN of the newest delivered batch against Stable_SN.
  TryCommitMigration();
}

void Cluster::InjectBatch(const StreamBatch& batch, int only_node) {
  StreamState& state = streams_[batch.stream];
  const uint32_t nodes = config_.nodes;
  const bool filtered = only_node >= 0;
  SnapshotNum sn = coordinator_->PlanSnFor(batch.stream, batch.seq);

  // Live injection targets every live node (a quarantined node's partition is
  // recovered later from the log); restore replay targets exactly one node.
  auto applies = [&](NodeId n) {
    return filtered ? n == static_cast<NodeId>(only_node) : fabric_->node_up(n);
  };
  // The stream's Adaptor+Dispatcher fail over to a surviving node when their
  // host is down; shipping then originates there.
  NodeId ingest = state.ingest_node;
  if (!fabric_->node_up(ingest)) {
    for (NodeId n = 0; n < nodes; ++n) {
      if (fabric_->node_up(n)) {
        ingest = n;
        break;
      }
    }
  }

  // Dispatcher: partition each tuple's two directions by owner node.
  obs::Tracer* batch_tracer = filtered ? nullptr : tracer_;
  auto dispatch_span = TraceSpan(batch_tracer, "ingest", "ingest/dispatch", ingest);
  dispatch_span.Arg("stream", static_cast<uint64_t>(batch.stream))
      .Arg("seq", static_cast<uint64_t>(batch.seq))
      .Arg("tuples", static_cast<uint64_t>(batch.tuples.size()));
  std::vector<std::vector<std::pair<Key, VertexId>>> timeless(nodes);
  std::vector<std::vector<std::pair<Key, VertexId>>> timing(nodes);
  // Dual-apply (DESIGN.md §5.10): while a shard migration is pending, the
  // moving shard's partition is mirrored onto the target (same SN, same batch
  // seq) so the target's copy tracks the source batch-for-batch.
  Migration* mig = filtered ? nullptr : migration_.get();
  std::vector<std::pair<Key, VertexId>> mig_timeless;
  std::vector<std::pair<Key, VertexId>> mig_timing;
  const auto view = shard_map_.View();
  for (const StreamTuple& t : batch.tuples) {
    Key out_key(t.triple.subject, t.triple.predicate, Dir::kOut);
    Key in_key(t.triple.object, t.triple.predicate, Dir::kIn);
    auto& out_dst = t.kind == TupleKind::kTiming ? timing : timeless;
    out_dst[view->OwnerOfV(t.triple.subject)].emplace_back(out_key,
                                                           t.triple.object);
    out_dst[view->OwnerOfV(t.triple.object)].emplace_back(in_key,
                                                          t.triple.subject);
    if (mig != nullptr) {
      auto& mig_dst = t.kind == TupleKind::kTiming ? mig_timing : mig_timeless;
      if (view->ShardOfVertex(t.triple.subject) == mig->shard) {
        mig_dst.emplace_back(out_key, t.triple.object);
      }
      if (view->ShardOfVertex(t.triple.object) == mig->shard) {
        mig_dst.emplace_back(in_key, t.triple.subject);
      }
    }
  }
  dispatch_span.End();

  // Injection: persistent appends (timeless) + transient slices (timing).
  // A node inside a scheduled slow window gets its partition parked in the
  // per-node backlog instead — healthy nodes never wait on a straggler, and
  // the backlog drains FIFO once the window ends.
  FaultInjector* inj = config_.fault_injector;
  const StreamTime batch_end_ms = (batch.seq + 1) * config_.batch_interval_ms;
  if (config_.replan.enabled && !filtered) {
    // Live ingest-rate statistics (§5.14), in logical stream time so drift
    // detection replays deterministically. Empty batches still advance the
    // stream's trailing rate window; restore replay does not re-count.
    stream_stats_.ObserveBatch(batch.stream, batch_end_ms, batch.tuples.size());
  }
  LatencyProbe inject_probe;
  auto append_span = TraceSpan(batch_tracer, "ingest", "ingest/append", ingest);
  append_span.Arg("stream", static_cast<uint64_t>(batch.stream))
      .Arg("seq", static_cast<uint64_t>(batch.seq));
  std::vector<std::vector<AppendSpan>> spans(nodes);
  std::vector<char> deferred(nodes, 0);
  for (NodeId n = 0; n < nodes; ++n) {
    if (!applies(n)) {
      continue;
    }
    size_t tuple_count = timeless[n].size() + timing[n].size();
    if (tuple_count > 0) {
      size_t bytes = tuple_count * kTupleWireBytes;
      if (inj != nullptr && !filtered) {
        // Dispatcher->Injector shipping is fallible: a lost send retries
        // with backoff. If the budget is exhausted the dispatcher escalates
        // to a slow reliable path (one more full send) — delivery never
        // fails, it only gets slower.
        Status s = RunWithRetry(
            config_.retry, [&] { return fabric_->TryMessage(ingest, n, bytes); },
            &fault_stats_.delivery_retry);
        if (!s.ok()) {
          fabric_->Message(ingest, n, bytes);
        }
      } else {
        fabric_->Message(ingest, n, bytes);
      }
    }
    if (!filtered && inj != nullptr && inj->NodeSlowAt(n, batch_end_ms)) {
      backlog_[n].push_back(DeferredInjection{batch.stream, batch.seq, sn,
                                              std::move(timeless[n]),
                                              std::move(timing[n])});
      deferred[n] = 1;
      Bump(obs_.backlog_deferred);
      std::lock_guard lock(overload_mu_);
      ++overload_stats_.backlog_deferred;
      continue;
    }
    if (!filtered && !backlog_[n].empty()) {
      DrainBacklog(n);  // FIFO: parked batches land before this one.
    }
    injected_window_edges_[batch.stream][n] += tuple_count;
    {
      auto persist_span = TraceSpan(
          timeless[n].empty() ? nullptr : batch_tracer, "ingest",
          "ingest/append_persistent", n);
      persist_span.Arg("edges", static_cast<uint64_t>(timeless[n].size()));
      for (const auto& [key, value] : timeless[n]) {
        stores_raw_[n]->InjectEdge(key, value, sn, &spans[n]);
      }
    }
    {
      auto transient_span = TraceSpan(
          timing[n].empty() ? nullptr : batch_tracer, "ingest",
          "ingest/append_transient", n);
      transient_span.Arg("edges", static_cast<uint64_t>(timing[n].size()));
      AppendTimingEdges(batch.stream, n, batch.seq, timing[n]);
    }
  }
  append_span.End();
  if (!filtered) {
    state.profile.inject_ms += inject_probe.FinishMs();
  }

  // Stream index construction + locality-aware replication (§4.2). Restore
  // replay rebuilds only the target node's index portion; replication to
  // subscribers already happened during the original live injection.
  LatencyProbe index_probe;
  auto index_span =
      TraceSpan(batch_tracer, "ingest", "ingest/index_publish", ingest);
  index_span.Arg("stream", static_cast<uint64_t>(batch.stream))
      .Arg("seq", static_cast<uint64_t>(batch.seq));
  for (NodeId n = 0; n < nodes; ++n) {
    if (!applies(n) || deferred[n]) {
      continue;
    }
    stream_indexes_raw_[batch.stream][n]->AddBatch(batch.seq, spans[n]);
    if (spans[n].empty() || filtered) {
      continue;
    }
    if (config_.locality_aware_index) {
      size_t index_bytes = spans[n].size() * sizeof(AppendSpan) + 32;
      for (NodeId sub : state.subscribers) {
        if (sub != n && fabric_->node_up(sub)) {
          fabric_->Message(n, sub, index_bytes);
          ++index_replications_;
        }
      }
    }
  }
  index_span.End();
  if (!filtered) {
    state.profile.index_ms += index_probe.FinishMs();
  }

  // Dual-apply lands after the target's own AddBatch/AppendSlice for this
  // seq, so MergeBatch/MergeSlice fold into existing entries. It must NOT
  // bump the per-batch injection counters below — the differential harness
  // cross-checks those against the batch logger.
  if (mig != nullptr && migration_ != nullptr) {
    const NodeId target = migration_->target;
    const size_t mig_edges = mig_timeless.size() + mig_timing.size();
    if (!fabric_->node_up(target)) {
      // Source keeps a complete copy; partial target copy is stranded.
      AbortMigrationInternal(/*taint=*/true, "target went down mid-transfer");
    } else if (deferred[target] && mig_edges > 0) {
      // The target parked this batch (slow window): its AddBatch has not run,
      // so the mirror cannot fold in order. Roll back rather than reorder.
      AbortMigrationInternal(/*taint=*/true,
                             "target deferred a batch mid-transfer");
    } else if (mig_edges > 0) {
      fabric_->Message(migration_->source, target, mig_edges * kTupleWireBytes);
      std::vector<AppendSpan> mig_spans;
      for (const auto& [key, value] : mig_timeless) {
        stores_raw_[target]->InjectEdgeMigrated(key, value, sn, &mig_spans);
      }
      if (!mig_spans.empty()) {
        stream_indexes_raw_[batch.stream][target]->MergeBatch(batch.seq,
                                                              mig_spans);
      }
      if (!mig_timing.empty()) {
        transients_raw_[batch.stream][target]->MergeSlice(batch.seq, mig_timing);
      }
      injected_window_edges_[batch.stream][target] += mig_edges;
      migration_->edges_copied += mig_edges;
      reconfig_stats_.dual_applied_edges += mig_edges;
      Bump(obs_.reconfig_dual_applied_edges, mig_edges);
    }
  }

  for (NodeId n = 0; n < nodes; ++n) {
    if (applies(n) && !deferred[n]) {
      coordinator_->ReportInjected(n, batch.stream, batch.seq);
    }
  }
  if (filtered) {
    return;
  }
  state.profile.tuples += batch.tuples.size();
  state.profile.batches += 1;
  Bump(obs_.batches_injected);
  Bump(obs_.tuples_injected, batch.tuples.size());
  Bump(state.obs_batches);
  Bump(state.obs_tuples, batch.tuples.size());

  if (batch_logger_) {
    batch_logger_(batch);
  }
}

void Cluster::AppendTimingEdges(
    StreamId stream, NodeId n, BatchSeq seq,
    const std::vector<std::pair<Key, VertexId>>& edges) {
  TransientStore* ts = transients_raw_[stream][n];
  if (ts->AppendSlice(seq, edges)) {
    return;
  }
  // The memory budget refused the slice even after its internal GC. Escalate:
  // raise the stream's shed pressure, give maintenance one chance to free
  // expired slices (the listener typically kicks the daemon or runs a
  // synchronous pass), then retry once.
  {
    std::lock_guard lock(overload_mu_);
    ++overload_stats_.append_pressure_events;
  }
  Bump(obs_.append_pressure_events);
  streams_[stream].pressure.Raise(config_.overload.append_failure_pressure);
  if (pressure_listener_) {
    pressure_listener_(stream, n);
  }
  if (ts->AppendSlice(seq, edges)) {
    return;
  }
  size_t kept = 0;
  if (config_.overload.enabled && config_.overload.shed_timing) {
    // Shed: keep the largest batch prefix that fits (suffix-only loss).
    kept = ts->AppendSlicePrefix(seq, edges);
  }
  // else: the pre-overload behavior — the partition is dropped — but the
  // loss is now recorded and surfaces as shed_fraction on window results
  // instead of vanishing silently.
  const size_t lost = edges.size() - kept;
  if (lost == 0) {
    return;
  }
  if (config_.overload.enabled && config_.overload.shed_timing) {
    Bump(obs_.injector_shed_edges, lost);
  } else {
    Bump(obs_.timing_edges_lost, lost);
  }
  std::lock_guard lock(overload_mu_);
  streams_[stream].shed[seq].injector_lost_edges += lost;
  if (config_.overload.enabled && config_.overload.shed_timing) {
    overload_stats_.injector_shed_edges += lost;
  } else {
    overload_stats_.timing_edges_lost += lost;
  }
}

void Cluster::DrainBacklog(NodeId n) {
  if (backlog_[n].empty()) {
    return;
  }
  const double delay_ns = config_.fault_injector != nullptr
                              ? config_.fault_injector->CatchUpDelayNs(n)
                              : 0.0;
  while (!backlog_[n].empty()) {
    DeferredInjection d = std::move(backlog_[n].front());
    backlog_[n].pop_front();
    // Catching up is not free: each parked batch charges the recovering
    // node's modeled apply delay.
    SimCost::Add(delay_ns);
    injected_window_edges_[d.stream][n] += d.timeless.size() + d.timing.size();
    std::vector<AppendSpan> spans;
    for (const auto& [key, value] : d.timeless) {
      stores_raw_[n]->InjectEdge(key, value, d.sn, &spans);
    }
    AppendTimingEdges(d.stream, n, d.seq, d.timing);
    stream_indexes_raw_[d.stream][n]->AddBatch(d.seq, spans);
    if (!spans.empty() && config_.locality_aware_index) {
      size_t index_bytes = spans.size() * sizeof(AppendSpan) + 32;
      for (NodeId sub : streams_[d.stream].subscribers) {
        if (sub != n && fabric_->node_up(sub)) {
          fabric_->Message(n, sub, index_bytes);
          ++index_replications_;
        }
      }
    }
    coordinator_->ReportInjected(n, d.stream, d.seq);
    Bump(obs_.backlog_drained);
    std::lock_guard lock(overload_mu_);
    ++overload_stats_.backlog_drained;
  }
}

bool Cluster::NodeCaughtUp(NodeId n) const {
  if (!backlog_[n].empty()) {
    return false;
  }
  return coordinator_->LocalVts(n).Covers(coordinator_->StableVts());
}

void Cluster::TickHealth(StreamTime now_ms) {
  if (now_ms > last_health_ms_) {
    last_health_ms_ = now_ms;
  }
  FaultInjector* inj = config_.fault_injector;
  if (inj != nullptr) {
    // Publish the logical clock so fabric verbs can price gray-failure
    // service factors without threading `now` through every call site.
    inj->AdvanceNow(now_ms);
  }
  // A slow window that ended releases its node's parked batches even when no
  // new batch happens to target that node.
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (!backlog_[n].empty() && fabric_->node_up(n) &&
        (inj == nullptr || !inj->NodeSlowAt(n, now_ms))) {
      DrainBacklog(n);
    }
  }
  if (config_.overload.enabled) {
    for (StreamState& state : streams_) {
      state.pressure.Decay(config_.overload.pressure_decay);
    }
  }
  if (health_ != nullptr) {
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (!fabric_->node_up(n)) {
        continue;
      }
      if (inj != nullptr && inj->NodeSlowAt(n, now_ms)) {
        continue;  // The straggler's heartbeat goes missing — that IS the signal.
      }
      fabric_->Heartbeat(n, 0);
      health_->Heartbeat(n, now_ms);
      Bump(obs_.heartbeats);
    }
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (!fabric_->node_up(n)) {
        continue;
      }
      HealthAction action = health_->Evaluate(n, now_ms, NodeCaughtUp(n));
      // Migration endpoints are exempt from quarantine: un-serving the target
      // would stall the cutover barrier forever (and the source must keep
      // serving the moving shard until the epoch bumps). A draining node is
      // already being emptied; quarantining it would only churn the epoch.
      const bool reconfig_pinned =
          draining_.count(n) > 0 ||
          (migration_ != nullptr &&
           (migration_->source == n || migration_->target == n));
      if (action == HealthAction::kQuarantine && fabric_->node_serving(n) &&
          !reconfig_pinned && fabric_->serving_count() > 1) {
        // Stop waiting on the straggler: queries skip its shard (partial,
        // like a crash) but injection keeps feeding it so it can catch up.
        coordinator_->SetNodeActive(n, false);
        fabric_->SetNodeServing(n, false);
        Bump(obs_.quarantines);
        std::lock_guard lock(overload_mu_);
        ++overload_stats_.quarantines;
      } else if (action == HealthAction::kReactivate &&
                 !fabric_->node_serving(n)) {
        coordinator_->SetNodeActive(n, true);
        fabric_->SetNodeServing(n, true);
        Bump(obs_.reactivations);
        std::lock_guard lock(overload_mu_);
        ++overload_stats_.reactivations;
      }
    }
  }
  if (straggler_ != nullptr) {
    // Gray-failure probes (§5.11): each tick deposits one modeled service
    // sample per live node — the base probe cost scaled by any active
    // gray-failure factor. Unlike phi-accrual (blind here: heartbeats keep
    // arriving during a gray failure), this sees the *service* slowdown, and
    // it keeps demoted nodes' EWMAs fresh so they can be promoted back once
    // their slow window ends even though queries no longer touch them.
    constexpr double kProbeNs = 1000.0;
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (!fabric_->node_up(n)) {
        continue;
      }
      double factor = inj != nullptr ? inj->ServiceFactorAt(n, now_ms) : 1.0;
      ObserveServiceSample(n, kProbeNs * factor);
    }
    uint32_t healthy = 0;
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (fabric_->node_serving(n) && !straggler_->slow(n)) {
        ++healthy;
      }
    }
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (!fabric_->node_up(n)) {
        continue;
      }
      if (!straggler_->slow(n) && healthy <= 1) {
        continue;  // Never demote the last healthy fan-out member.
      }
      StragglerAction action = straggler_->Evaluate(n);
      if (action == StragglerAction::kDemote) {
        --healthy;
        Bump(obs_.straggler_demotions);
        if (tracer_ != nullptr) {
          tracer_->Instant("straggler", "straggler/demote", n);
        }
      } else if (action == StragglerAction::kPromote) {
        ++healthy;
        Bump(obs_.straggler_promotions);
        if (tracer_ != nullptr) {
          tracer_->Instant("straggler", "straggler/promote", n);
        }
      }
    }
  }
  // Quarantine moves Stable_VTS over the survivors: credits may have freed.
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    PumpPending(s);
  }
  // Reactivations (or backlog drains) may have advanced Stable_VTS past the
  // cutover barrier of a finished transfer.
  TryCommitMigration();
}

void Cluster::SetPressureListener(std::function<void(StreamId, NodeId)> listener) {
  pressure_listener_ = std::move(listener);
}

OverloadStats Cluster::overload_stats() const {
  std::lock_guard lock(overload_mu_);
  OverloadStats s = overload_stats_;
  if (health_ != nullptr) {
    s.heartbeats = health_->stats().heartbeats;
  }
  return s;
}

size_t Cluster::PendingBatches(StreamId stream) const {
  if (stream >= streams_.size()) {
    return 0;
  }
  return streams_[stream].pending.size();
}

Cluster::ShedInfo Cluster::ShedInfoFor(StreamId stream, BatchSeq seq) const {
  ShedInfo info;
  if (stream >= streams_.size()) {
    return info;
  }
  std::lock_guard lock(overload_mu_);
  auto it = streams_[stream].shed.find(seq);
  if (it == streams_[stream].shed.end()) {
    return info;
  }
  info.timing_tuples = it->second.timing_tuples;
  info.door_shed_tuples = it->second.door_shed_tuples;
  info.injector_lost_edges = it->second.injector_lost_edges;
  return info;
}

bool Cluster::NodeServing(NodeId n) const { return fabric_->node_serving(n); }

uint32_t Cluster::ServingNodeCount() const { return fabric_->serving_count(); }

void Cluster::ApplyWindowLoss(const Registration& reg, StreamTime end_ms,
                              QueryExecution* exec) const {
  // Everything in edge units (1 door tuple = 2 dispatched edges) so door
  // sheds and injector losses add up consistently.
  uint64_t total = 0;
  uint64_t shed = 0;
  VectorTimestamp stable = coordinator_->StableVts();
  std::lock_guard lock(overload_mu_);
  for (size_t w = 0; w < reg.query.windows.size(); ++w) {
    const WindowSpec& spec = reg.query.windows[w];
    StreamId sid = reg.stream_ids[w];
    BatchRange range;
    if (spec.absolute) {
      range.lo = spec.from_ms / config_.batch_interval_ms;
      range.hi = (spec.to_ms - 1) / config_.batch_interval_ms;
      BatchSeq have = stable.Get(sid);
      if (have == kNoBatch || have < range.lo) {
        range.empty = true;
      } else if (range.hi > have) {
        range.hi = have;
      }
    } else {
      range = WindowBatches(end_ms, spec.range_ms, config_.batch_interval_ms);
    }
    if (range.empty) {
      continue;
    }
    const auto& ledger = streams_[sid].shed;
    for (BatchSeq b = range.lo; b <= range.hi; ++b) {
      auto it = ledger.find(b);
      if (it == ledger.end()) {
        continue;
      }
      total += 2 * it->second.timing_tuples;
      shed += 2 * it->second.door_shed_tuples + it->second.injector_lost_edges;
    }
  }
  exec->timing_edges_lost = shed;
  exec->shed_fraction =
      total == 0 ? 0.0
                 : std::min(1.0, static_cast<double>(shed) /
                                     static_cast<double>(total));
  // Window loss compounds with deadline cancellation: every execution path
  // funnels through here after ApplyDegrade, so the declared completeness
  // always reflects both degradation sources.
  exec->completeness *= 1.0 - exec->shed_fraction;
}

bool Cluster::IsSelective(const Query& q, const std::vector<int>& plan) const {
  if (plan.empty()) {
    return true;
  }
  const TriplePattern& first = q.patterns[static_cast<size_t>(plan.front())];
  return !first.subject.is_var() || !first.object.is_var();
}

StatusOr<ExecContext> Cluster::BuildContext(
    const Registration& reg, StreamTime end_ms, ChargePolicy policy, NodeId home,
    std::vector<std::unique_ptr<NeighborSource>>* holders, DegradeState* degrade) {
  ExecContext ctx;
  ctx.strings = strings_;
  ctx.columnar = config_.columnar_executor;
  if constexpr (obs::kCompiledIn) {
    ctx.tracer = tracer_;
    ctx.trace_node = home;
  }
  // One ownership snapshot for every source of this execution: all reads
  // route by the same epoch even if a migration commits mid-flight.
  const auto view = shard_map_.View();
  holders->push_back(std::make_unique<StoreSource>(
      stores_raw_, fabric_.get(), home, coordinator_->StableSn(), policy,
      &config_.retry, degrade, view));
  ctx.sources.push_back(holders->back().get());
  VectorTimestamp stable = coordinator_->StableVts();
  for (size_t w = 0; w < reg.query.windows.size(); ++w) {
    StreamId sid = reg.stream_ids[w];
    const WindowSpec& spec = reg.query.windows[w];
    BatchRange range;
    if (spec.absolute) {
      // Time-ontology one-shot scope [from, to): clamp to the stable prefix
      // so the read is consistent even while injection is in flight.
      range.lo = spec.from_ms / config_.batch_interval_ms;
      range.hi = (spec.to_ms - 1) / config_.batch_interval_ms;
      BatchSeq have = stable.Get(sid);
      if (have == kNoBatch || have < range.lo) {
        range.empty = true;
      } else if (range.hi > have) {
        range.hi = have;
      }
    } else {
      range = WindowBatches(end_ms, spec.range_ms, config_.batch_interval_ms);
    }
    holders->push_back(std::make_unique<WindowSource>(
        stores_raw_, stream_indexes_raw_[sid], transients_raw_[sid], fabric_.get(),
        home, range, policy, config_.locality_aware_index, &config_.retry,
        degrade, view));
    ctx.sources.push_back(holders->back().get());
  }
  return ctx;
}

NodeId Cluster::EffectiveHome(NodeId home) {
  // A quarantined (slow) home is avoided just like a crashed one: executions
  // land on a serving node. A draining home sheds query duty the same way,
  // but only while a non-draining serving node exists to take it. A home
  // demoted by the straggler detector (still serving, just slow) hands off
  // the same way, falling back to itself when every candidate is slow too.
  const bool home_ok =
      fabric_->node_serving(home) && draining_.count(home) == 0;
  if (home_ok && !StragglerSlow(home)) {
    return home;
  }
  if (straggler_ != nullptr) {
    for (NodeId n = 0; n < config_.nodes; ++n) {
      if (fabric_->node_serving(n) && draining_.count(n) == 0 &&
          !StragglerSlow(n)) {
        ++fault_stats_.reroutes;
        Bump(obs_.reroutes);
        return n;
      }
    }
  }
  if (home_ok) {
    return home;  // Every other candidate is slow as well; stay put.
  }
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (fabric_->node_serving(n) && draining_.count(n) == 0) {
      ++fault_stats_.reroutes;
      Bump(obs_.reroutes);
      return n;
    }
  }
  if (fabric_->node_serving(home)) {
    return home;  // Every serving node is draining; stay put.
  }
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (fabric_->node_serving(n)) {
      ++fault_stats_.reroutes;
      Bump(obs_.reroutes);
      return n;
    }
  }
  return home;  // Nothing is serving; callers will fail downstream.
}

void Cluster::ObserveServiceSample(NodeId n, double service_ns) {
  if (service_ns <= 0.0) {
    return;
  }
  if (straggler_ != nullptr) {
    straggler_->Observe(n, service_ns);
  }
  if (config_.hedge.enabled || straggler_ != nullptr) {
    std::lock_guard lock(service_mu_);
    if (n < service_hist_.size()) {
      service_hist_[n].Add(service_ns);
      if (n < service_hist_metrics_.size() &&
          service_hist_metrics_[n] != nullptr) {
        service_hist_metrics_[n]->Observe(service_ns);
      }
    }
  }
}

std::vector<NodeId> Cluster::ForkJoinFanout() const {
  std::vector<NodeId> fanout;
  std::vector<NodeId> serving;
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (!fabric_->node_serving(n)) {
      continue;
    }
    serving.push_back(n);
    if (!StragglerSlow(n)) {
      fanout.push_back(n);
    }
  }
  // If demotion emptied the fan-out entirely, fork-join over everything
  // serving rather than nothing (slow beats absent).
  return fanout.empty() ? serving : fanout;
}

double Cluster::EffectiveBudgetMs(double deadline_ms) const {
  if (!config_.deadline.enforce) {
    return 0.0;
  }
  return deadline_ms > 0.0 ? deadline_ms : config_.deadline.default_budget_ms;
}

double Cluster::HedgeDelayNs() const {
  if (!config_.hedge.enabled) {
    return 0.0;
  }
  // Median of the per-node p95s, so one gray-failing node's inflated tail
  // cannot drag the trigger threshold up with it.
  std::vector<double> p95s;
  {
    std::lock_guard lock(service_mu_);
    for (NodeId n = 0; n < config_.nodes && n < service_hist_.size(); ++n) {
      if (!fabric_->node_serving(n)) {
        continue;
      }
      if (service_hist_[n].count() < config_.hedge.min_samples) {
        continue;  // Still warming up.
      }
      p95s.push_back(service_hist_[n].Percentile(95.0));
    }
  }
  if (p95s.empty()) {
    return 0.0;  // Hedging stays disarmed until the histograms warm up.
  }
  size_t mid = p95s.size() / 2;
  std::nth_element(p95s.begin(), p95s.begin() + mid, p95s.end());
  double delay = config_.hedge.margin_mult * p95s[mid];
  return std::max(delay, config_.hedge.min_delay_ns);
}

void Cluster::ApplyDegrade(const DegradeState& degrade, QueryExecution* exec) {
  exec->partial = degrade.partial;
  exec->skipped_shards = degrade.skipped_shards;
  exec->fault_retries = degrade.retry.retries;
  exec->backoff_ms = degrade.retry.backoff_ns / 1e6;
  Bump(obs_.fault_retries, degrade.retry.retries);
  Bump(obs_.backoff_us, static_cast<uint64_t>(degrade.retry.backoff_ns / 1e3));
  if (degrade.partial) {
    ++fault_stats_.degraded_executions;
    Bump(obs_.degraded_executions);
  }
  // Deadline surface (§5.11): expired implies work was actually cancelled,
  // which implies partial (sources / the step hook set both together).
  exec->deadline_expired = degrade.deadline_expired;
  exec->deadline_skipped_reads = degrade.deadline_skipped_reads;
  Bump(obs_.deadline_skipped_reads, degrade.deadline_skipped_reads);
  Bump(obs_.deadline_cancelled_steps, degrade.steps_cancelled);
  if (degrade.deadline_expired) {
    Bump(obs_.deadline_expired);
  }
  // Declared completeness: the minimum of the served fraction of charged
  // reads and the executed fraction of fork-join rounds. 1.0 when nothing
  // was cancelled; ApplyWindowLoss multiplies in (1 - shed_fraction) after.
  double frac = 1.0;
  uint64_t reads = degrade.reads_ok + degrade.deadline_skipped_reads;
  if (reads > 0) {
    frac = std::min(frac, static_cast<double>(degrade.reads_ok) /
                              static_cast<double>(reads));
  }
  uint64_t steps = degrade.steps_done + degrade.steps_cancelled;
  if (steps > 0) {
    frac = std::min(frac, static_cast<double>(degrade.steps_done) /
                              static_cast<double>(steps));
  }
  exec->completeness = frac;
}

StatusOr<QueryExecution> Cluster::RunQuery(const Query& q,
                                           const std::vector<int>& plan,
                                           const ExecContext& ctx, NodeId home,
                                           bool fork_join, bool selective,
                                           SnapshotNum snapshot,
                                           DegradeState* degrade) {
  const NetworkModel& m = config_.network;
  const bool rdma = fabric_->transport() == Transport::kRdma;
  // Degraded clusters fork-join over the serving survivors only; straggler
  // demotion (§5.11) further narrows the fan-out to non-slow members (same
  // count as serving_count() when the detector is off or sees nothing).
  const std::vector<NodeId> fanout = ForkJoinFanout();
  const uint32_t live = static_cast<uint32_t>(fanout.size());
  // A selective query forced into fork-join involves only the nodes its few
  // keys live on: migrating execution, no cluster-wide barrier.
  const bool migrating = fork_join && selective;
  // Gray-failure pricing: when the injector schedules sustained slow-node
  // windows, each fork-join round's barrier waits for the slowest fan-out
  // member, and a round exceeding the hedge delay issues a backup to the
  // fastest one (first response wins, the loser's reply is deduplicated).
  const bool gray = config_.fault_injector != nullptr &&
                    config_.fault_injector->HasGrayFailures();
  const double hedge_delay = HedgeDelayNs();
  HedgeDedup dedup;
  uint64_t sub_seq = 0;
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;

  StepHook hook;
  if (fork_join && live > 1) {
    hook = [&](const TriplePattern&, size_t rows_before, size_t cols_before,
               size_t rows_after) {
      if (Deadline::ExpiredNow()) {
        // Budget exhausted: cancel this round (and transitively all later
        // ones) instead of shipping it. The rows still flow locally — the
        // result stays a sound subset — but no further cost is charged and
        // the execution declares what it skipped.
        if (degrade != nullptr) {
          degrade->partial = true;
          degrade->deadline_expired = true;
          ++degrade->steps_cancelled;
        }
        return;
      }
      double round = 0.0;
      if (!migrating && rows_before > kSmallStepRows) {
        // Scatter: ship the binding table partition-wise, one concurrent
        // round; charge the round's base plus the shipped volume.
        size_t bytes = rows_before * (cols_before + 1) * kBindingBytes + 16;
        if (rdma) {
          round = m.rdma_msg_base_ns +
                  m.rdma_msg_per_byte_ns * static_cast<double>(bytes);
        } else {
          round = m.tcp_msg_base_ns +
                  m.tcp_msg_per_byte_ns * static_cast<double>(bytes);
        }
      } else {
        // Tiny step: the continuation migrates with its rows in one hop.
        round = rdma ? kRdmaHopNs : kTcpHopNs;
      }
      double eff = round;
      if (!migrating && gray) {
        // Per-node round times: node n serves its partition in
        // round * factor(n); the join barrier waits for the worst. Every
        // per-node time feeds the service histograms the hedge delay and
        // the straggler detector derive from.
        double worst = 1.0;
        double best = std::numeric_limits<double>::infinity();
        for (NodeId n : fanout) {
          double f = fabric_->ServiceFactor(n);
          ObserveServiceSample(n, round * f);
          worst = std::max(worst, f);
          best = std::min(best, f);
        }
        eff = round * worst;
        if (config_.hedge.enabled && hedge_delay > 0.0 && eff > hedge_delay &&
            best < worst) {
          // The slowest sub-request blew past the hedge delay: issue a
          // backup to the fastest healthy member. Both responses eventually
          // arrive; HedgeDedup folds in exactly the first and suppresses
          // the loser (identical deterministic bindings — a digest mismatch
          // would be a correctness bug).
          ++hedges_issued;
          uint64_t sub = sub_seq++;
          std::string digest = std::to_string(rows_before) + ":" +
                               std::to_string(cols_before) + ":" +
                               std::to_string(rows_after);
          double backup = hedge_delay + round * best;
          if (backup < eff) {
            ++hedges_won;
            eff = backup;
          }
          bool first = dedup.Accept(sub, digest);
          bool second = dedup.Accept(sub, digest);
          assert(first && !second);
          (void)first;
          (void)second;
        }
      } else if (!migrating && straggler_ != nullptr) {
        for (NodeId n : fanout) {
          ObserveServiceSample(n, round);
        }
      }
      SimCost::Add(eff);
      if (degrade != nullptr) {
        ++degrade->steps_done;
      }
      FaultInjector* inj = config_.fault_injector;
      if (inj != nullptr && inj->FailMessage(home, home)) {
        // Lost scatter/migration round: the join barrier times out waiting
        // for the straggler, then the round is retransmitted.
        SimCost::Add(config_.retry.BackoffNs(1) + round);
      }
    };
  }

  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  const char* mode =
      fork_join ? (migrating ? "migrating" : "fork_join") : "in_place";
  if (tracer_ != nullptr) {
    tracer_->Instant("query", "query/dispatch", home);
  }
  auto exec_span = TraceSpan(tracer_, "query", "query/execute", home);
  exec_span.Arg("mode", std::string(mode))
      .Arg("patterns", static_cast<uint64_t>(plan.size()));
  auto result = ExecutePipeline(q, plan, ctx, hook);
  if (!result.ok()) {
    return result.status();
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  double cpu_ns = wall.ElapsedNs();
  exec_span.Arg("rows", static_cast<uint64_t>(result->rows.size()));
  exec_span.End();

  auto merge_span = TraceSpan(tracer_, "query", "query/merge", home);
  if (fork_join && live > 1 && !migrating) {
    // Full fork-join: dispatch into every node's task queue + join barrier.
    SimCost::Add(rdma ? kForkJoinSetupRdmaNs : kForkJoinSetupTcpNs);
    // Join: gather final bindings to the home node. Small results piggyback
    // on the per-step reply (selective queries effectively completed on one
    // node); only bulky results pay a full gather round.
    if (result->rows.size() > kSmallStepRows) {
      size_t bytes =
          result->rows.size() * (result->columns.size() + 1) * kBindingBytes + 16;
      if (rdma) {
        SimCost::Add(m.rdma_msg_base_ns +
                     m.rdma_msg_per_byte_ns * static_cast<double>(bytes));
      } else {
        SimCost::Add(m.tcp_msg_base_ns +
                     m.tcp_msg_per_byte_ns * static_cast<double>(bytes));
      }
    } else {
      SimCost::Add(rdma ? kRdmaHopNs : kTcpHopNs);
    }
    cpu_ns /= std::pow(static_cast<double>(live),
                       config_.fork_join_parallel_exponent);
  } else if (migrating && live > 1) {
    SimCost::Add(rdma ? kRdmaHopNs : kTcpHopNs);  // Final reply hop.
  }
  merge_span.End();
  double net_ns = SimCost::TotalNs() - sim_before;

  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = cpu_ns / 1e6;
  exec.net_ms = net_ns / 1e6;
  exec.fork_join = fork_join;
  exec.snapshot = snapshot;
  exec.ownership_epoch = shard_map_.epoch();
  exec.hedges_issued = hedges_issued;
  exec.hedges_won = hedges_won;
  if (hedges_issued > 0) {
    Bump(obs_.hedge_issued, hedges_issued);
    Bump(obs_.hedge_wins, hedges_won);
    // Every hedge produces exactly one losing response, cancelled on
    // arrival; the dedup gate counts the suppression.
    Bump(obs_.hedge_cancelled, hedges_issued);
    Bump(obs_.hedge_duplicates_suppressed, dedup.duplicates());
    assert(dedup.mismatches() == 0);
  }
  return exec;
}

StatusOr<QueryExecution> Cluster::RunQueryDelta(Registration& reg,
                                                const PlanState& plan,
                                                StreamTime end_ms, NodeId home,
                                                DegradeState* degrade,
                                                bool* used) {
  *used = false;
  const Query& q = reg.query;
  const size_t dw = static_cast<size_t>(reg.delta_window);
  StreamId sid = reg.stream_ids[dw];
  BatchRange range = WindowBatches(end_ms, q.windows[dw].range_ms,
                                   config_.batch_interval_ms);
  if (range.empty) {
    return QueryExecution{};  // Nothing to slice; cold path handles it.
  }

  // Position of the window pattern inside this trigger's plan snapshot.
  size_t window_pos = 0;
  for (size_t i = 0; i < plan.order.size(); ++i) {
    if (q.patterns[static_cast<size_t>(plan.order[i])].graph != kGraphStored) {
      window_pos = i;
      break;
    }
  }

  std::vector<std::unique_ptr<NeighborSource>> holders;
  auto ctx = BuildContext(reg, end_ms, ChargePolicy::kInPlace, home, &holders,
                          degrade);
  if (!ctx.ok()) {
    return ctx.status();
  }

  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  if (tracer_ != nullptr) {
    tracer_->Instant("query", "query/dispatch", home);
  }
  auto exec_span = TraceSpan(tracer_, "query", "query/execute", home);
  exec_span.Arg("mode", std::string("delta"))
      .Arg("patterns", static_cast<uint64_t>(plan.order.size()));

  // Trigger delta derived from Stable_VTS advancement: the batches that
  // became stable since the previous delta trigger are the only candidates
  // for fresh evaluation (the cache holds the rest of the window).
  BatchSeq prev = reg.last_stable->load(std::memory_order_relaxed);
  BatchRange advance = coordinator_->StableAdvanceSince(sid, prev);
  if (!advance.empty) {
    reg.last_stable->store(advance.hi, std::memory_order_relaxed);
    exec_span.Arg("stable_advance",
                  static_cast<uint64_t>(advance.hi - advance.lo + 1));
  }

  DeltaCache* cache = reg.delta_cache.get();
  DeltaCache::Stats before = cache->stats();
  cache->BeginTrigger(StoredEpoch(), range.lo, range.hi);
  DeltaCache::Stats after = cache->stats();
  Bump(obs_.delta_invalidations, after.invalidations - before.invalidations);
  Bump(obs_.delta_epoch_flushes, after.epoch_flushes - before.epoch_flushes);

  DeltaSpec spec;
  spec.cache = cache;
  spec.window_pos = window_pos;
  spec.batches.reserve(static_cast<size_t>(range.hi - range.lo + 1));
  for (BatchSeq b = range.lo; b <= range.hi; ++b) {
    spec.batches.push_back(b);
  }
  // Per-slice views of the window's stream, created lazily: only slices the
  // cache does not hold are ever read.
  std::vector<std::unique_ptr<NeighborSource>> slice_holders;
  const auto slice_view = shard_map_.View();
  spec.slice_source = [&](BatchSeq b) -> const NeighborSource* {
    slice_holders.push_back(std::make_unique<WindowSource>(
        stores_raw_, stream_indexes_raw_[sid], transients_raw_[sid],
        fabric_.get(), home, BatchRange{b, b, false}, ChargePolicy::kInPlace,
        config_.locality_aware_index, &config_.retry, degrade, slice_view));
    return slice_holders.back().get();
  };

  auto delta = ExecuteDeltaPatterns(q, plan.order, *ctx, spec);
  if (!delta.ok()) {
    return delta.status();
  }
  Bump(obs_.delta_hits, delta->slices_cached);
  Bump(obs_.delta_misses, delta->slices_fresh);
  if (delta->fallback) {
    return QueryExecution{};  // Caller re-runs cold (*used stays false).
  }

  auto result = ProjectResult(q, *ctx, delta->table);
  if (!result.ok()) {
    return result.status();
  }
  Status fin = FinalizeSolution(q, *ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  double cpu_ns = wall.ElapsedNs();
  exec_span.Arg("rows", static_cast<uint64_t>(result->rows.size()))
      .Arg("cached", delta->slices_cached)
      .Arg("fresh", delta->slices_fresh);
  exec_span.End();
  double net_ns = SimCost::TotalNs() - sim_before;

  *used = true;
  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = cpu_ns / 1e6;
  exec.net_ms = net_ns / 1e6;
  exec.fork_join = false;
  exec.snapshot = coordinator_->StableSn();
  exec.ownership_epoch = shard_map_.epoch();
  exec.delta = true;
  exec.delta_slices_cached = delta->slices_cached;
  exec.delta_slices_fresh = delta->slices_fresh;
  return exec;
}

StatusOr<QueryExecution> Cluster::ExecuteUnion(const Registration& reg,
                                               StreamTime end_ms,
                                               SnapshotNum snapshot) {
  QueryExecution total;
  total.snapshot = snapshot;
  total.window_end_ms = end_ms;
  total.ownership_epoch = shard_map_.epoch();
  NodeId home = EffectiveHome(reg.home);
  const bool degraded = fabric_->AnyNodeNotServing();
  DegradeState degrade;
  for (const std::vector<TriplePattern>& branch : reg.query.unions) {
    Query bq = reg.query;
    bq.patterns = branch;
    bq.unions.clear();
    // Modifiers apply once, after the branches are concatenated.
    bq.distinct = false;
    bq.order_by.clear();
    bq.limit = 0;
    Registration breg;
    breg.query = bq;
    breg.home = reg.home;
    breg.stream_ids = reg.stream_ids;

    std::vector<std::unique_ptr<NeighborSource>> plan_holders;
    auto plan_ctx = BuildContext(breg, end_ms, ChargePolicy::kNoCharge, home,
                                 &plan_holders, nullptr);
    if (!plan_ctx.ok()) {
      return plan_ctx.status();
    }
    std::vector<int> plan = PlanQuery(bq, *plan_ctx);
    bool selective = IsSelective(bq, plan);
    // A quarantined shard reroutes in-place queries to fork-join over the
    // survivors (graceful degradation).
    bool fork_join = config_.force_fork_join ||
                     ((!selective || degraded) && !config_.force_in_place);
    std::vector<std::unique_ptr<NeighborSource>> holders;
    auto ctx = BuildContext(
        breg, end_ms, fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
        home, &holders, &degrade);
    if (!ctx.ok()) {
      return ctx.status();
    }
    auto exec = RunQuery(bq, plan, *ctx, home, fork_join, selective, snapshot,
                         &degrade);
    if (!exec.ok()) {
      return exec.status();
    }
    total.cpu_ms += exec->cpu_ms;
    total.net_ms += exec->net_ms;
    total.hedges_issued += exec->hedges_issued;
    total.hedges_won += exec->hedges_won;
    total.fork_join = total.fork_join || exec->fork_join;
    if (total.result.columns.empty()) {
      total.result.columns = exec->result.columns;
    }
    for (auto& row : exec->result.rows) {
      total.result.rows.push_back(std::move(row));
    }
  }
  ExecContext finalize_ctx;
  finalize_ctx.strings = strings_;
  Status fin = FinalizeSolution(reg.query, finalize_ctx, &total.result);
  if (!fin.ok()) {
    return fin;
  }
  ApplyDegrade(degrade, &total);
  // The merge step carries the loss accounting: before this, a UNION /
  // fork-join execution rebuilt QueryExecution from the branch merges and the
  // client never saw shed_fraction or the absolute edge loss.
  ApplyWindowLoss(reg, end_ms, &total);
  return total;
}

StatusOr<QueryExecution> Cluster::OneShot(std::string_view text, NodeId home,
                                          double deadline_ms) {
  auto parse_span = TraceSpan(tracer_, "query", "query/parse", home);
  auto q = ParseQuery(text, strings_);
  parse_span.End();
  if (!q.ok()) {
    return q.status();
  }
  return OneShotParsed(*q, home, deadline_ms);
}

StatusOr<QueryExecution> Cluster::OneShotParsed(const Query& q, NodeId home,
                                                double deadline_ms) {
  if (q.continuous) {
    return Status::InvalidArgument("continuous query submitted as one-shot");
  }
  // Latency budget (§5.11): active for the rest of this execution — every
  // fabric verb and fork-join round below charges against it. A no-op scope
  // when enforcement is off or no budget applies.
  DeadlineScope budget(EffectiveBudgetMs(deadline_ms));
  for (const WindowSpec& w : q.windows) {
    if (!w.absolute) {
      return Status::InvalidArgument(
          "one-shot query may only use absolute [FROM..TO] stream scopes");
    }
  }
  SnapshotNum snapshot = coordinator_->StableSn();
  if (test_hooks::stale_sn_read.load(std::memory_order_relaxed) && snapshot > 0) {
    --snapshot;  // Planted defect: read one snapshot behind Stable_SN.
  }

  // Plan against a charge-free view, then execute with charging.
  std::vector<std::unique_ptr<NeighborSource>> holders;
  Registration reg;
  reg.query = q;
  reg.home = home;
  for (const WindowSpec& w : q.windows) {
    auto sid = FindStream(w.stream_name);
    if (!sid.ok()) {
      return sid.status();
    }
    reg.stream_ids.push_back(*sid);
  }
  if (!q.unions.empty()) {
    auto exec = ExecuteUnion(reg, 0, snapshot);
    if (exec.ok()) {
      Bump(obs_.queries_oneshot);
    }
    return exec;
  }
  NodeId exec_home = EffectiveHome(home);
  const bool degraded = fabric_->AnyNodeNotServing();
  DegradeState degrade;
  auto plan_span = TraceSpan(tracer_, "query", "query/plan", exec_home);
  auto plan_ctx = BuildContext(reg, 0, ChargePolicy::kNoCharge, exec_home,
                               &holders, nullptr);
  if (!plan_ctx.ok()) {
    return plan_ctx.status();
  }
  std::vector<int> plan = PlanQuery(q, *plan_ctx);
  plan_span.Arg("patterns", static_cast<uint64_t>(plan.size()));
  plan_span.End();
  bool selective = IsSelective(q, plan);
  bool fork_join = config_.force_fork_join ||
                   ((!selective || degraded) && !config_.force_in_place);

  std::vector<std::unique_ptr<NeighborSource>> exec_holders;
  auto ctx = BuildContext(reg, 0,
                          fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
                          exec_home, &exec_holders, &degrade);
  if (!ctx.ok()) {
    return ctx.status();
  }
  auto exec = RunQuery(q, plan, *ctx, exec_home, fork_join, selective, snapshot,
                       &degrade);
  if (exec.ok()) {
    ApplyDegrade(degrade, &exec.value());
    ApplyWindowLoss(reg, 0, &exec.value());
    Bump(obs_.queries_oneshot);
  }
  return exec;
}

StatusOr<Cluster::ContinuousHandle> Cluster::RegisterContinuous(
    std::string_view text, NodeId home) {
  auto parse_span = TraceSpan(tracer_, "query", "query/parse", home);
  auto q = ParseQuery(text, strings_);
  parse_span.End();
  if (!q.ok()) {
    return q.status();
  }
  return RegisterContinuousParsed(*q, home);
}

StatusOr<Cluster::ContinuousHandle> Cluster::RegisterContinuousParsed(const Query& q,
                                                                      NodeId home) {
  if (q.windows.empty()) {
    return Status::InvalidArgument("continuous query must declare stream windows");
  }
  Registration reg;
  reg.query = q;
  reg.home = home % config_.nodes;
  for (const WindowSpec& w : q.windows) {
    auto sid = FindStream(w.stream_name);
    if (!sid.ok()) {
      return sid.status();
    }
    reg.stream_ids.push_back(*sid);
    // Locality-aware partitioning: replicate this stream's index to the node
    // where the query runs, from now on (Fig. 9).
    streams_[*sid].subscribers.insert(reg.home);
  }
  AttachDeltaCache(reg);
  registrations_.push_back(std::move(reg));
  Registration& stored = registrations_.back();
  if (stored.delta_cache != nullptr) {
    std::lock_guard lock(delta_mu_);
    StreamId sid = stored.stream_ids[static_cast<size_t>(stored.delta_window)];
    delta_caches_by_stream_[sid].push_back(stored.delta_cache.get());
  }
  ContinuousHandle h = static_cast<ContinuousHandle>(registrations_.size() - 1);
  if (config_.mqo.enabled) {
    AddToTemplateGroup(h);
  }
  return h;
}

void Cluster::AttachDeltaCache(Registration& reg) {
  if (!config_.delta_cache_enabled) {
    return;
  }
  int dw = DeltaEligibleWindow(reg.query);
  if (dw >= 0) {
    reg.delta_window = dw;
    reg.delta_cache = std::make_unique<DeltaCache>();
    reg.last_stable = std::make_unique<std::atomic<BatchSeq>>(kNoBatch);
  }
}

void Cluster::DetachDeltaCache(Registration& reg) {
  if (reg.delta_cache == nullptr) {
    return;
  }
  std::lock_guard lock(delta_mu_);
  StreamId sid = reg.stream_ids[static_cast<size_t>(reg.delta_window)];
  std::erase(delta_caches_by_stream_[sid], reg.delta_cache.get());
}

void Cluster::AddToTemplateGroup(ContinuousHandle h) {
  Registration& reg = registrations_[h];
  TemplateSignature sig = CanonicalizeTemplate(reg.query);
  if (!sig.eligible) {
    return;  // Independent evaluation, exactly as without MQO.
  }
  std::lock_guard lock(mqo_mu_);
  size_t idx;
  auto it = group_index_.find(sig.key);
  if (it != group_index_.end()) {
    idx = it->second;
  } else {
    auto owned = std::make_unique<TemplateGroup>();
    TemplateGroup& g = *owned;
    g.key = sig.key;
    g.hole_col = sig.hole_var;
    g.probe.query = std::move(sig.probe);
    g.probe.home = reg.home;
    g.probe.stream_ids = reg.stream_ids;
    // Per-group delta cache: one cached stored-prefix serves the whole
    // group. Indexed by stream like any member cache, so eviction listeners,
    // crash flushes and the stored-epoch gate all reach it.
    AttachDeltaCache(g.probe);
    if (g.probe.delta_cache != nullptr) {
      std::lock_guard dlock(delta_mu_);
      StreamId sid =
          g.probe.stream_ids[static_cast<size_t>(g.probe.delta_window)];
      delta_caches_by_stream_[sid].push_back(g.probe.delta_cache.get());
    }
    idx = groups_.size();
    group_index_.emplace(g.key, idx);
    groups_.push_back(std::move(owned));
    mqo_groups_formed_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_.mqo_groups_formed);
  }
  TemplateGroup& g = *groups_[idx];
  {
    std::lock_guard glock(g.mu);
    g.members.push_back(h);
    g.memo_valid = false;
  }
  reg.group = static_cast<int>(idx);
  reg.hole_constant = sig.hole_constant;
  reg.var_to_canon = std::move(sig.var_to_canon);
  mqo_grouped_registrations_.fetch_add(1, std::memory_order_relaxed);
  Bump(obs_.mqo_grouped_registrations);
  BumpMqoGeneration();
}

void Cluster::RemoveFromTemplateGroup(ContinuousHandle h) {
  Registration& reg = registrations_[h];
  if (reg.group < 0) {
    return;
  }
  std::lock_guard lock(mqo_mu_);
  TemplateGroup& g = *groups_[static_cast<size_t>(reg.group)];
  {
    std::lock_guard glock(g.mu);
    std::erase(g.members, h);
    g.memo_valid = false;
    if (g.members.empty() && g.live) {
      // Last member out dissolves the group; its key can re-form a fresh
      // group later (indices are never reused, handles stay stable).
      g.live = false;
      DetachDeltaCache(g.probe);
      group_index_.erase(g.key);
      mqo_groups_dissolved_.fetch_add(1, std::memory_order_relaxed);
      Bump(obs_.mqo_groups_dissolved);
    }
  }
  reg.group = -1;
  BumpMqoGeneration();
}

Status Cluster::UnregisterContinuous(ContinuousHandle h) {
  if (h >= registrations_.size()) {
    return Status::NotFound("unknown continuous query handle");
  }
  Registration& reg = registrations_[h];
  if (!reg.active) {
    return Status::NotFound("continuous query handle already unregistered");
  }
  reg.active = false;
  DetachDeltaCache(reg);
  if (test_hooks::stale_group_membership.load(std::memory_order_relaxed)) {
    return Status::Ok();  // Planted defect: group membership never shrinks.
  }
  RemoveFromTemplateGroup(h);
  BumpMqoGeneration();
  return Status::Ok();
}

bool Cluster::ContinuousActive(ContinuousHandle h) const {
  return h < registrations_.size() && registrations_[h].active;
}

Cluster::MqoStats Cluster::mqo_stats() const {
  MqoStats s;
  s.grouped_registrations =
      mqo_grouped_registrations_.load(std::memory_order_relaxed);
  s.groups_formed = mqo_groups_formed_.load(std::memory_order_relaxed);
  s.groups_dissolved = mqo_groups_dissolved_.load(std::memory_order_relaxed);
  s.shared_evals = mqo_shared_evals_.load(std::memory_order_relaxed);
  s.fanout_served = mqo_fanout_served_.load(std::memory_order_relaxed);
  s.independent_fallbacks = mqo_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

int Cluster::MqoGroupOf(ContinuousHandle h) const {
  return h < registrations_.size() ? registrations_[h].group : -1;
}

size_t Cluster::MqoGroupSizeOf(ContinuousHandle h) const {
  int g = MqoGroupOf(h);
  if (g < 0) {
    return 0;
  }
  std::lock_guard lock(mqo_mu_);
  TemplateGroup& group = *groups_[static_cast<size_t>(g)];
  std::lock_guard glock(group.mu);
  return group.members.size();
}

size_t Cluster::MqoLiveGroups() const {
  std::lock_guard lock(mqo_mu_);
  size_t live = 0;
  for (const auto& g : groups_) {
    live += g->live ? 1 : 0;
  }
  return live;
}

bool Cluster::MqoGroupHasDeltaCache(ContinuousHandle h) const {
  int g = MqoGroupOf(h);
  if (g < 0) {
    return false;
  }
  std::lock_guard lock(mqo_mu_);
  return groups_[static_cast<size_t>(g)]->probe.delta_cache != nullptr;
}

int Cluster::DeltaEligibleWindow(const Query& q) {
  // Per-slice decomposition (§5.9) is exact only when a single pattern reads
  // window data: with two window patterns a binding can join batch b1 data
  // against batch b2 data, which no per-slice contribution represents.
  if (!q.unions.empty() || q.limit != 0) {
    return -1;  // UNION branches plan separately; LIMIT makes order observable.
  }
  int window = -1;
  for (const TriplePattern& p : q.patterns) {
    if (p.graph == kGraphStored) {
      continue;
    }
    if (window >= 0) {
      return -1;
    }
    window = p.graph;
  }
  if (window < 0) {
    return -1;  // No window pattern: nothing to cache per slice.
  }
  for (const auto& group : q.optionals) {
    for (const TriplePattern& p : group) {
      if (p.graph != kGraphStored) {
        return -1;  // OPTIONAL joins window data per row; not decomposable.
      }
    }
  }
  if (q.windows[static_cast<size_t>(window)].absolute) {
    return -1;  // Absolute scopes never slide; the one-shot path serves them.
  }
  return window;
}

const Query& Cluster::ContinuousQueryOf(ContinuousHandle h) const {
  return registrations_[h].query;
}

bool Cluster::HasDeltaCache(ContinuousHandle h) const {
  return h < registrations_.size() && registrations_[h].delta_cache != nullptr;
}

DeltaCache::Stats Cluster::DeltaStatsOf(ContinuousHandle h) const {
  if (!HasDeltaCache(h)) {
    return {};
  }
  return registrations_[h].delta_cache->stats();
}

size_t Cluster::DeltaEntryCountOf(ContinuousHandle h) const {
  if (!HasDeltaCache(h)) {
    return 0;
  }
  return registrations_[h].delta_cache->EntryCount();
}

bool Cluster::WindowReady(ContinuousHandle h, StreamTime end_ms) const {
  const Registration& reg = registrations_[h];
  VectorTimestamp stable = coordinator_->StableVts();
  for (size_t w = 0; w < reg.query.windows.size(); ++w) {
    BatchRange range = WindowBatches(end_ms, reg.query.windows[w].range_ms,
                                     config_.batch_interval_ms);
    if (range.empty) {
      continue;
    }
    BatchSeq have = stable.Get(reg.stream_ids[w]);
    if (have == kNoBatch || have < range.hi) {
      return false;
    }
  }
  return true;
}

StatusOr<QueryExecution> Cluster::ExecuteContinuousAt(ContinuousHandle h,
                                                      StreamTime end_ms,
                                                      double deadline_ms) {
  return ExecuteContinuousImpl(h, end_ms, /*allow_delta=*/true, /*count=*/true,
                               deadline_ms);
}

StatusOr<QueryExecution> Cluster::ExecuteContinuousColdAt(ContinuousHandle h,
                                                          StreamTime end_ms) {
  return ExecuteContinuousImpl(h, end_ms, /*allow_delta=*/false,
                               /*count=*/false);
}

StatusOr<QueryExecution> Cluster::ExecuteContinuousImpl(ContinuousHandle h,
                                                        StreamTime end_ms,
                                                        bool allow_delta,
                                                        bool count,
                                                        double deadline_ms) {
  if (h >= registrations_.size()) {
    return Status::NotFound("unknown continuous query handle");
  }
  Registration& reg = registrations_[h];
  if (!reg.active &&
      !(test_hooks::stale_group_membership.load(std::memory_order_relaxed) &&
        reg.group >= 0)) {
    return Status::NotFound("continuous query handle was unregistered");
  }
  if (!WindowReady(h, end_ms)) {
    return Status::FailedPrecondition(
        "stream windows not ready (Stable_VTS behind window end)");
  }
  // Continuous triggers carry latency budgets too (§5.11); no-op when none.
  DeadlineScope budget(EffectiveBudgetMs(deadline_ms));
  if (!reg.query.unions.empty()) {
    auto exec = ExecuteUnion(reg, end_ms, coordinator_->StableSn());
    if (exec.ok()) {
      exec->window_end_ms = end_ms;
      if (count) {
        Bump(obs_.queries_continuous);
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("query", "query/deliver", reg.home);
      }
    }
    return exec;
  }

  // Template-group dispatch (§5.12): serve the trigger from the group's
  // shared probe evaluation. Cold re-execution (allow_delta=false) bypasses
  // grouping the same way it bypasses the delta cache — it is the
  // differential harness's independent baseline.
  if (allow_delta && config_.mqo.enabled && reg.group >= 0) {
    auto grouped = TryExecuteGrouped(reg, end_ms);
    if (grouped.has_value()) {
      if (grouped->ok()) {
        if (count) {
          Bump(obs_.queries_continuous);
        }
        if (tracer_ != nullptr) {
          tracer_->Instant("query", "query/deliver", reg.home);
        }
      }
      return std::move(*grouped);
    }
  }
  return ExecuteRegistrationAt(reg, end_ms, allow_delta, count);
}

StatusOr<QueryExecution> Cluster::ExecuteRegistrationAt(Registration& reg,
                                                        StreamTime end_ms,
                                                        bool allow_delta,
                                                        bool count) {
  // Degradation reroute: a registration whose home node is down executes on
  // the first surviving node instead of crashing.
  NodeId home = EffectiveHome(reg.home);
  const bool degraded = fabric_->AnyNodeNotServing();
  DegradeState degrade;

  // Plan once, at the first triggered execution (stored-procedure style).
  // An attached delta cache biases toward stored-prefix-first plans so the
  // cached prefix and per-slice contributions stay reusable (§5.9).
  std::shared_ptr<const PlanState> plan = EnsurePlanned(reg, end_ms, home);
  if (plan == nullptr || plan->order.size() != reg.query.patterns.size()) {
    return Status::Internal("continuous query has no cached plan");
  }
  // Adaptive re-planning (§5.14): on trigger cadence, compare the plan's
  // statistics snapshot against live collector state and cut over to a
  // re-synthesized plan behind the shadow parity gate. Skipped on a degraded
  // cluster — a reroute is the wrong moment to judge plan quality.
  if (config_.replan.enabled && !degraded && allow_delta) {
    MaybeReplan(reg, end_ms, home);
    std::lock_guard lock(*reg.plan_mu);
    plan = reg.plan;
  }
  bool selective = plan->selective;
  bool fork_join = config_.force_fork_join ||
                   ((!selective || degraded) && !config_.force_in_place);

  // Delta gate: eligible registration triggering in-place on a healthy,
  // fault-free cluster. Everything else takes the cold path (and an eligible
  // trigger that could not run as a delta counts as a bypass).
  if (allow_delta && reg.delta_cache != nullptr && !fork_join && !degraded &&
      config_.fault_injector == nullptr) {
    bool used = false;
    auto exec = RunQueryDelta(reg, *plan, end_ms, home, &degrade, &used);
    if (!exec.ok()) {
      return exec.status();
    }
    if (used) {
      exec->window_end_ms = end_ms;
      ApplyDegrade(degrade, &exec.value());
      ApplyWindowLoss(reg, end_ms, &exec.value());
      if (count) {
        Bump(obs_.queries_continuous);
      }
      if (tracer_ != nullptr) {
        tracer_->Instant("query", "query/deliver", home);
      }
      return exec;
    }
    Bump(obs_.delta_bypasses);
    degrade = DegradeState{};
  } else if (allow_delta && reg.delta_cache != nullptr) {
    Bump(obs_.delta_bypasses);
  }

  std::vector<std::unique_ptr<NeighborSource>> holders;
  auto ctx = BuildContext(reg, end_ms,
                          fork_join ? ChargePolicy::kNoCharge : ChargePolicy::kInPlace,
                          home, &holders, &degrade);
  if (!ctx.ok()) {
    return ctx.status();
  }
  // Production triggers train the fan-out EWMA; cold oracle re-executions
  // (allow_delta=false) must not — observing them would let parity checks
  // themselves perturb future plans.
  if (config_.replan.enabled && allow_delta) {
    ctx->observe = MakeExpansionObserver(reg);
  }
  auto exec = RunQuery(reg.query, plan->order, *ctx, home, fork_join,
                       selective, coordinator_->StableSn(), &degrade);
  if (exec.ok()) {
    exec->window_end_ms = end_ms;
    ApplyDegrade(degrade, &exec.value());
    ApplyWindowLoss(reg, end_ms, &exec.value());
    if (count) {
      Bump(obs_.queries_continuous);
    }
    if (tracer_ != nullptr) {
      tracer_->Instant("query", "query/deliver", home);
    }
  }
  return exec;
}

// --- Adaptive re-planning & plan pinning (§5.14) ---------------------------

PlanHints Cluster::HintsFor(const Registration& reg,
                            const StreamStatsSnapshot* stats) const {
  PlanHints hints;
  hints.delta_cache = reg.delta_cache != nullptr;
  hints.stats = stats;
  if (stats != nullptr) {
    hints.window_scope.reserve(reg.stream_ids.size());
    for (StreamId sid : reg.stream_ids) {
      hints.window_scope.push_back(static_cast<int32_t>(sid));
    }
  }
  return hints;
}

std::function<void(const TriplePattern&, size_t, size_t, size_t)>
Cluster::MakeExpansionObserver(const Registration& reg) {
  return [this, &reg](const TriplePattern& p, size_t rows_before,
                      size_t cols_before, size_t rows_after) {
    // Only genuine bound expansions train the fan-out EWMA: the seed step
    // starts from the implicit unit row and its output size is window
    // cardinality, not join selectivity.
    if (cols_before == 0 || rows_before == 0) {
      return;
    }
    int32_t scope = kStoredScope;
    if (p.graph != kGraphStored &&
        static_cast<size_t>(p.graph) < reg.stream_ids.size()) {
      scope = static_cast<int32_t>(reg.stream_ids[static_cast<size_t>(p.graph)]);
    }
    stream_stats_.ObserveExpansion(scope, p.predicate, rows_before, rows_after);
  };
}

std::shared_ptr<const Cluster::PlanState> Cluster::EnsurePlanned(
    Registration& reg, StreamTime end_ms, NodeId home) {
  {
    std::lock_guard lock(*reg.plan_mu);
    if (reg.plan != nullptr) {
      return reg.plan;
    }
  }
  // Plan outside the lock (planning reads window cardinalities through the
  // fabric); a concurrent first trigger may plan too, but both see the same
  // sources and the re-check below installs exactly one winner.
  auto plan_span = TraceSpan(tracer_, "query", "query/plan", home);
  std::vector<std::unique_ptr<NeighborSource>> plan_holders;
  auto plan_ctx = BuildContext(reg, end_ms, ChargePolicy::kNoCharge, home,
                               &plan_holders, nullptr);
  if (!plan_ctx.ok()) {
    return nullptr;
  }
  auto state = std::make_shared<PlanState>();
  if (config_.replan.enabled) {
    state->stats = stream_stats_.Snapshot();
  }
  PlanHints hints =
      HintsFor(reg, config_.replan.enabled ? &state->stats : nullptr);
  state->order = PlanQuery(reg.query, *plan_ctx, hints);
  state->selective = IsSelective(reg.query, state->order);
  std::lock_guard lock(*reg.plan_mu);
  if (reg.plan == nullptr) {
    reg.plan = std::move(state);
  }
  return reg.plan;
}

void Cluster::InstallPlan(Registration& reg,
                          std::shared_ptr<const PlanState> next, bool rekey) {
  const uint64_t version = next->version;
  {
    std::lock_guard lock(*reg.plan_mu);
    reg.plan = std::move(next);
  }
  if (!rekey) {
    return;
  }
  // Coherence: delta-cache prefixes/contributions and MQO memos were built
  // under the old plan's pattern order; both must be retired before the new
  // plan serves a trigger, or stale state flows into live results.
  if (reg.delta_cache != nullptr) {
    const DeltaCache::Stats before = reg.delta_cache->stats();
    reg.delta_cache->SetPlanVersion(version);
    const DeltaCache::Stats after = reg.delta_cache->stats();
    Bump(obs_.delta_plan_flushes, after.plan_flushes - before.plan_flushes);
    Bump(obs_.delta_invalidations, after.invalidations - before.invalidations);
  }
  BumpMqoGeneration();
}

StatusOr<QueryResult> Cluster::ShadowExecute(Registration& reg,
                                             StreamTime end_ms, NodeId home,
                                             const std::vector<int>& order,
                                             uint64_t* rows) {
  std::vector<std::unique_ptr<NeighborSource>> holders;
  auto ctx = BuildContext(reg, end_ms, ChargePolicy::kNoCharge, home, &holders,
                          nullptr);
  if (!ctx.ok()) {
    return ctx.status();
  }
  // The observer meters budget here, not statistics: shadow work must not
  // train the collector that triggered it.
  ctx->observe = [rows](const TriplePattern&, size_t, size_t,
                        size_t rows_after) { *rows += rows_after; };
  return ExecuteQuery(reg.query, order, *ctx);
}

void Cluster::MaybeReplan(Registration& reg, StreamTime end_ms, NodeId home) {
  std::shared_ptr<const PlanState> current;
  {
    std::lock_guard lock(*reg.plan_mu);
    current = reg.plan;
    if (current == nullptr || current->pinned) {
      return;
    }
    if (++reg.triggers_since_check < config_.replan.min_triggers_between) {
      return;
    }
    reg.triggers_since_check = 0;
  }
  {
    std::lock_guard lock(replan_mu_);
    ++replan_stats_.checks;
  }
  Bump(obs_.replan_checks);

  StreamStatsSnapshot fresh = stream_stats_.Snapshot();
  if (test_hooks::stale_stats_snapshot.load(std::memory_order_relaxed)) {
    // Planted defect: the detector compares the plan's frozen snapshot
    // against itself, so drift is never visible and re-planning never fires.
    fresh = current->stats;
  }
  if (!DriftExceeds(current->stats, fresh, reg.stream_ids, config_.replan)) {
    return;
  }
  {
    std::lock_guard lock(replan_mu_);
    ++replan_stats_.drift_triggers;
  }
  Bump(obs_.replan_drift_triggers);

  // Synthesize a candidate from this trigger's window cardinalities plus the
  // live snapshot (observed fan-outs refine the bound-expansion estimates).
  auto plan_span = TraceSpan(tracer_, "query", "query/replan", home);
  std::vector<std::unique_ptr<NeighborSource>> plan_holders;
  auto plan_ctx = BuildContext(reg, end_ms, ChargePolicy::kNoCharge, home,
                               &plan_holders, nullptr);
  if (!plan_ctx.ok()) {
    return;
  }
  std::vector<int> candidate =
      PlanQuery(reg.query, *plan_ctx, HintsFor(reg, &fresh));
  if (candidate == current->order) {
    // Same order under the new statistics: adopt `fresh` as the drift
    // baseline so an already-absorbed shift stops re-triggering every
    // cadence.
    auto refreshed = std::make_shared<PlanState>(*current);
    refreshed->stats = std::move(fresh);
    std::lock_guard lock(*reg.plan_mu);
    if (reg.plan == current) {
      reg.plan = std::move(refreshed);
    }
    return;
  }

  auto next = std::make_shared<PlanState>();
  next->order = std::move(candidate);
  next->selective = IsSelective(reg.query, next->order);
  next->version = current->version + 1;
  next->stats = std::move(fresh);

  if (test_hooks::skip_parity_gate.load(std::memory_order_relaxed)) {
    // Planted defect: hot-swap the candidate with neither the shadow parity
    // check nor the coherent re-keying InstallPlan(rekey=true) performs.
    InstallPlan(reg, std::move(next), /*rekey=*/false);
    return;
  }

  // Shadow parity gate: both plans run cold over the same window and must be
  // bag-equal before the candidate may serve real triggers. Both failing
  // with the same status code also counts — the observable behavior is
  // unchanged. Budget is metered in produced rows so overrun fallbacks
  // replay deterministically.
  const uint64_t budget = config_.replan.shadow_budget_rows;
  uint64_t shadow_rows = 0;
  auto old_result = ShadowExecute(reg, end_ms, home, current->order, &shadow_rows);
  if (budget > 0 && shadow_rows > budget) {
    {
      std::lock_guard lock(replan_mu_);
      ++replan_stats_.budget_overruns;
    }
    Bump(obs_.replan_budget_overruns);
    return;  // Keep the proven plan; retry at the next cadence if drift holds.
  }
  auto new_result = ShadowExecute(reg, end_ms, home, next->order, &shadow_rows);
  if (budget > 0 && shadow_rows > budget) {
    {
      std::lock_guard lock(replan_mu_);
      ++replan_stats_.budget_overruns;
    }
    Bump(obs_.replan_budget_overruns);
    return;
  }
  bool parity = false;
  if (old_result.ok() && new_result.ok()) {
    parity = testkit::CanonicalBag(*old_result) ==
             testkit::CanonicalBag(*new_result);
  } else if (!old_result.ok() && !new_result.ok()) {
    parity = old_result.status().code() == new_result.status().code();
  }
  if (!parity) {
    {
      std::lock_guard lock(replan_mu_);
      ++replan_stats_.parity_failures;
    }
    Bump(obs_.replan_parity_failures);
    // Fall back safely: keep the proven plan but adopt the fresh baseline so
    // the diverging candidate is not re-synthesized every cadence.
    auto refreshed = std::make_shared<PlanState>(*current);
    refreshed->stats = next->stats;
    std::lock_guard lock(*reg.plan_mu);
    if (reg.plan == current) {
      reg.plan = std::move(refreshed);
    }
    return;
  }
  InstallPlan(reg, std::move(next), /*rekey=*/true);
  {
    std::lock_guard lock(replan_mu_);
    ++replan_stats_.cutovers;
  }
  Bump(obs_.replan_cutovers);
}

Status Cluster::PinContinuousPlan(ContinuousHandle h, const PlanPin& pin) {
  if (h >= registrations_.size() || !registrations_[h].active) {
    return Status::NotFound("unknown continuous query handle");
  }
  Registration& reg = registrations_[h];
  const size_t n = reg.query.patterns.size();
  if (pin.order.size() != n) {
    return Status::InvalidArgument("plan pin pattern count does not match the query");
  }
  std::vector<bool> seen(n, false);
  for (int idx : pin.order) {
    if (idx < 0 || static_cast<size_t>(idx) >= n || seen[static_cast<size_t>(idx)]) {
      return Status::InvalidArgument("plan pin order is not a permutation of the query's patterns");
    }
    seen[static_cast<size_t>(idx)] = true;
  }
  auto state = std::make_shared<PlanState>();
  state->order = pin.order;
  state->selective = pin.selective.value_or(IsSelective(reg.query, pin.order));
  state->pinned = true;
  {
    std::lock_guard lock(*reg.plan_mu);
    state->version = (reg.plan != nullptr ? reg.plan->version : 0) + 1;
  }
  if (config_.replan.enabled) {
    state->stats = stream_stats_.Snapshot();
  }
  InstallPlan(reg, std::move(state), /*rekey=*/true);
  {
    std::lock_guard lock(replan_mu_);
    ++replan_stats_.pins;
  }
  Bump(obs_.replan_pins);
  return Status::Ok();
}

Cluster::ReplanStats Cluster::replan_stats() const {
  std::lock_guard lock(replan_mu_);
  return replan_stats_;
}

std::vector<int> Cluster::ContinuousPlanOf(ContinuousHandle h) const {
  if (h >= registrations_.size()) {
    return {};
  }
  const Registration& reg = registrations_[h];
  std::lock_guard lock(*reg.plan_mu);
  return reg.plan != nullptr ? reg.plan->order : std::vector<int>{};
}

uint64_t Cluster::PlanVersionOf(ContinuousHandle h) const {
  if (h >= registrations_.size()) {
    return 0;
  }
  const Registration& reg = registrations_[h];
  std::lock_guard lock(*reg.plan_mu);
  return reg.plan != nullptr ? reg.plan->version : 0;
}

std::optional<StatusOr<QueryExecution>> Cluster::TryExecuteGrouped(
    Registration& reg, StreamTime end_ms) {
  TemplateGroup* g = nullptr;
  {
    std::lock_guard lock(mqo_mu_);
    if (reg.group < 0 || static_cast<size_t>(reg.group) >= groups_.size()) {
      return std::nullopt;
    }
    g = groups_[static_cast<size_t>(reg.group)].get();
  }
  std::lock_guard glock(g->mu);
  if (!g->live || g->members.size() < config_.mqo.min_group_size) {
    return std::nullopt;  // Singleton groups run byte-identically to no-MQO.
  }
  if (fabric_->AnyNodeNotServing()) {
    // A degraded cluster splits the whole group back to independent triggers
    // for this round: every member then reports its own partial/degrade
    // accounting instead of inheriting the probe's.
    mqo_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_.mqo_fallbacks);
    return std::nullopt;
  }

  const uint64_t stored = StoredEpoch();
  const SnapshotNum sn = coordinator_->StableSn();
  const uint64_t epoch = shard_map_.epoch();
  const uint64_t gen = mqo_gen_.load(std::memory_order_relaxed);
  bool paid = false;
  if (!(g->memo_valid && g->memo_end_ms == end_ms &&
        g->memo_stored_epoch == stored && g->memo_snapshot == sn &&
        g->memo_ownership_epoch == epoch && g->memo_gen == gen)) {
    g->memo_valid = false;
    auto shared = ExecuteRegistrationAt(g->probe, end_ms, /*allow_delta=*/true,
                                        /*count=*/false);
    mqo_shared_evals_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_.mqo_shared_evals);
    if (!shared.ok() || shared->partial || shared->deadline_expired ||
        shared->completeness < 1.0) {
      // A failed or degraded probe is never memoized and never fanned out:
      // the member re-runs independently so its error/partial surface is
      // exactly what a cluster without MQO would have produced.
      mqo_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      Bump(obs_.mqo_fallbacks);
      return std::nullopt;
    }
    g->memo_exec = std::move(*shared);
    g->memo_partition = PartitionRowsByColumn(g->memo_exec.result,
                                              static_cast<size_t>(g->hole_col));
    g->memo_valid = true;
    g->memo_end_ms = end_ms;
    g->memo_stored_epoch = stored;
    g->memo_snapshot = sn;
    g->memo_ownership_epoch = epoch;
    g->memo_gen = gen;
    paid = true;
  }

  static const std::vector<size_t> kNoRows;
  const std::vector<size_t>* rows = &kNoRows;
  std::vector<size_t> leak_rows;
  if (test_hooks::skip_fanout_partition.load(std::memory_order_relaxed)) {
    // Planted defect: skip the hash partition — every member receives the
    // whole probe result, i.e. its siblings' bindings leak into its answer.
    leak_rows.resize(g->memo_exec.result.rows.size());
    for (size_t r = 0; r < leak_rows.size(); ++r) {
      leak_rows[r] = r;
    }
    rows = &leak_rows;
  } else if (auto it = g->memo_partition.find(reg.hole_constant);
             it != g->memo_partition.end()) {
    rows = &it->second;
  }
  if (rows->empty() && !reg.query.filters.empty()) {
    // Independent evaluation of an empty-join member can early-exit and then
    // reject a FILTER over a never-bound variable; the probe (a superset of
    // every member's join) cannot reproduce that. Run such members
    // independently so grouped and independent error semantics stay
    // identical.
    mqo_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_.mqo_fallbacks);
    return std::nullopt;
  }

  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  ExecContext fan_ctx;
  fan_ctx.strings = strings_;
  if constexpr (obs::kCompiledIn) {
    fan_ctx.tracer = tracer_;
    fan_ctx.trace_node = reg.home;
  }
  auto result = ProjectMemberFromProbe(reg.query, fan_ctx, g->memo_exec.result,
                                       *rows, reg.var_to_canon);
  if (!result.ok()) {
    // Member-level modifier errors (e.g. ORDER BY on an aggregated column)
    // arise in FinalizeSolution on both paths — safe to surface directly.
    return std::optional<StatusOr<QueryExecution>>(result.status());
  }
  // The partition hand-off is one hop from the probe's home to the member's;
  // the shared evaluation itself was charged when the payer ran it.
  SimCost::Add(fabric_->transport() == Transport::kRdma ? kRdmaHopNs
                                                        : kTcpHopNs);
  QueryExecution out;
  out.result = std::move(*result);
  out.cpu_ms = wall.ElapsedNs() / 1e6;
  out.net_ms = (SimCost::TotalNs() - sim_before) / 1e6;
  out.fork_join = g->memo_exec.fork_join;
  out.snapshot = g->memo_exec.snapshot;
  out.window_end_ms = end_ms;
  out.ownership_epoch = g->memo_exec.ownership_epoch;
  if (paid) {
    // The member that paid for the shared evaluation carries its full cost
    // and accounting; memo-served siblings pay only the fan-out.
    out.cpu_ms += g->memo_exec.cpu_ms;
    out.net_ms += g->memo_exec.net_ms;
    out.fault_retries = g->memo_exec.fault_retries;
    out.backoff_ms = g->memo_exec.backoff_ms;
    out.hedges_issued = g->memo_exec.hedges_issued;
    out.hedges_won = g->memo_exec.hedges_won;
    out.delta = g->memo_exec.delta;
    out.delta_slices_cached = g->memo_exec.delta_slices_cached;
    out.delta_slices_fresh = g->memo_exec.delta_slices_fresh;
  } else {
    mqo_fanout_served_.fetch_add(1, std::memory_order_relaxed);
    Bump(obs_.mqo_fanout_served);
  }
  ApplyWindowLoss(reg, end_ms, &out);
  return std::optional<StatusOr<QueryExecution>>(std::move(out));
}

void Cluster::RunMaintenance(StreamTime live_horizon_ms) {
  SnapshotNum floor = coordinator_->CollapseFloor();
  for (GStore* store : stores_raw_) {
    store->CollapseBelow(floor);
  }
  BatchSeq min_live = live_horizon_ms / config_.batch_interval_ms;
  for (size_t s = 0; s < streams_.size(); ++s) {
    for (NodeId n = 0; n < config_.nodes; ++n) {
      stream_indexes_raw_[s][n]->EvictBefore(min_live);
      transients_raw_[s][n]->SetGcHorizon(min_live);
      transients_raw_[s][n]->RunGc();
    }
  }
  // Shed ledger entries age out with the same horizon: no window can reach
  // those batches again, so their loss accounting is dead weight.
  std::lock_guard lock(overload_mu_);
  for (StreamState& state : streams_) {
    std::erase_if(state.shed, [min_live](const auto& kv) {
      return kv.first < min_live;
    });
  }
  BumpMqoGeneration();
}

Cluster::InjectionProfile Cluster::injection_profile(StreamId stream) const {
  if (stream >= streams_.size()) {
    return {};
  }
  return streams_[stream].profile;
}

Cluster::MemoryReport Cluster::Memory() const {
  MemoryReport r;
  for (const auto& store : stores_) {
    r.store_bytes += store->MemoryBytes();
    r.snapshot_meta_bytes += store->SnapshotMetadataBytes();
    r.stream_appended_edges += store->StreamAppendedEdges();
  }
  for (size_t s = 0; s < streams_.size(); ++s) {
    size_t stream_bytes = 0;
    for (NodeId n = 0; n < config_.nodes; ++n) {
      stream_bytes += stream_indexes_raw_[s][n]->MemoryBytes();
      r.transient_bytes += transients_raw_[s][n]->MemoryBytes();
    }
    // Subscribed replicas duplicate the whole stream's index per subscriber
    // (minus the subscriber's own local portion, ignored here).
    size_t replicas = streams_[s].subscribers.size();
    r.stream_index_bytes += stream_bytes * (1 + replicas);
    r.stream_index_replicas += replicas;
  }
  r.string_server_bytes = strings_->MemoryBytes();
  return r;
}

size_t Cluster::StreamIndexBytes(StreamId stream) const {
  size_t bytes = 0;
  if (stream < stream_indexes_raw_.size()) {
    for (const StreamIndex* idx : stream_indexes_raw_[stream]) {
      bytes += idx->MemoryBytes();
    }
  }
  return bytes;
}

size_t Cluster::TransientBytes(StreamId stream) const {
  size_t bytes = 0;
  if (stream < transients_raw_.size()) {
    for (const TransientStore* ts : transients_raw_[stream]) {
      bytes += ts->MemoryBytes();
    }
  }
  return bytes;
}

void Cluster::SetBatchLogger(std::function<void(const StreamBatch&)> logger) {
  batch_logger_ = std::move(logger);
}

Status Cluster::ReplayBatch(const StreamBatch& batch) {
  if (batch.stream >= streams_.size()) {
    return Status::NotFound("unknown stream id in replayed batch");
  }
  StreamAdaptor* adaptor = streams_[batch.stream].adaptor.get();
  if (batch.seq < delivered_next_[batch.stream]) {
    // At-least-once replay (checkpoint log + upstream backup overlap):
    // already-injected batches are suppressed by the sequence gate.
    ++fault_stats_.duplicates_suppressed;
    Bump(obs_.duplicates_suppressed);
    return Status::Ok();
  }
  // Bring the adaptor level with the replay so later live feeding continues
  // from the right sequence. Missing intermediate batches are injected empty.
  std::vector<StreamBatch> fill;
  adaptor->AdvanceTo(batch.seq * config_.batch_interval_ms, &fill);
  for (const StreamBatch& b : fill) {
    if (b.seq < delivered_next_[b.stream]) {
      continue;
    }
    InjectBatch(b);
    delivered_next_[b.stream] = b.seq + 1;
  }
  InjectBatch(batch);
  delivered_next_[batch.stream] = batch.seq + 1;
  adaptor->FastForward(batch.seq + 1);
  return Status::Ok();
}

bool Cluster::NodeUp(NodeId n) const { return fabric_->node_up(n); }

uint32_t Cluster::UpNodeCount() const { return fabric_->up_count(); }

BatchSeq Cluster::NextSeq(StreamId stream) const {
  if (stream >= streams_.size()) {
    return 0;
  }
  return streams_[stream].adaptor->next_seq();
}

Status Cluster::CrashNode(NodeId node) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (!fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is already down");
  }
  if (fabric_->up_count() <= 1) {
    return Status::FailedPrecondition("cannot crash the last live node");
  }
  fabric_->SetNodeUp(node, false);
  // A crash supersedes any quarantine; clear the serving flag so the restored
  // node is not born quarantined, and drop batches parked for it (the restore
  // path replays them from the checkpoint log instead).
  fabric_->SetNodeServing(node, true);
  backlog_[node].clear();
  crash_marked_.insert(node);
  // Stale service history dies with the process too: a restored node starts
  // with a clean straggler record and an empty latency histogram.
  if (straggler_ != nullptr) {
    straggler_->Reset(node);
  }
  {
    std::lock_guard lock(service_mu_);
    if (node < service_hist_.size()) {
      service_hist_[node].Clear();
    }
  }
  // A migration with this node as an endpoint rolls back to the old epoch.
  // Crashing the *target* also resets its stores, so any stranded partial
  // copy (this migration's or a previously tainted one) dies with it.
  AbortMigrationFor(node);
  std::erase_if(migration_taints_,
                [node](const auto& p) { return p.second == node; });
  draining_.erase(node);
  // Excluded from Stable_VTS so surviving nodes keep triggering windows, and
  // its injection progress is forgotten so restore can re-report from seq 0.
  coordinator_->SetNodeActive(node, false);
  coordinator_->ResetNode(node);
  // Volatile state dies with the process: the shard, its stream-index
  // portion, and its transient slices.
  stores_[node] = std::make_unique<GStore>(node);
  stores_raw_[node] = stores_[node].get();
  for (size_t s = 0; s < streams_.size(); ++s) {
    stream_indexes_[s][node] = std::make_unique<StreamIndex>();
    stream_indexes_raw_[s][node] = stream_indexes_[s][node].get();
    transients_[s][node] =
        std::make_unique<TransientStore>(config_.transient_budget_bytes);
    transients_raw_[s][node] = transients_[s][node].get();
    WireEvictionListeners(static_cast<StreamId>(s), node);
  }
  // Scoped delta flush: only caches of streams whose *window data* actually
  // touched the crashed node lost summarized slices (the epoch sum alone
  // could coincide across the reset, so those flush explicitly). A stream
  // that never landed an edge on this node keeps its caches warm; stored-
  // graph staleness is covered by the StoredEpoch guard in BeginTrigger.
  {
    std::lock_guard lock(delta_mu_);
    for (size_t s = 0; s < delta_caches_by_stream_.size(); ++s) {
      if (s >= injected_window_edges_.size() ||
          injected_window_edges_[s][node] == 0) {
        continue;
      }
      for (DeltaCache* cache : delta_caches_by_stream_[s]) {
        Bump(obs_.delta_invalidations, cache->InvalidateAll());
      }
    }
  }
  for (auto& per_node : injected_window_edges_) {
    per_node[node] = 0;  // The restore replay re-counts from scratch.
  }
  ++fault_stats_.crashes;
  Bump(obs_.crashes);
  BumpMqoGeneration();
  return Status::Ok();
}

void Cluster::SetCrashHandler(std::function<void(const CrashEvent&)> handler) {
  crash_handler_ = std::move(handler);
}

void Cluster::SetUpstreamBuffer(UpstreamBuffer* upstream) {
  upstream_ = upstream;
}

Status Cluster::LoadBaseForNode(NodeId node, std::span<const Triple> triples) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is live; crash it before restoring");
  }
  for (const Triple& t : triples) {
    if (OwnerOf(t.subject) == node) {
      stores_raw_[node]->LoadEdge(Key(t.subject, t.predicate, Dir::kOut),
                                  t.object);
    }
    if (OwnerOf(t.object) == node) {
      stores_raw_[node]->LoadEdge(Key(t.object, t.predicate, Dir::kIn),
                                  t.subject);
    }
  }
  return Status::Ok();
}

Status Cluster::ReplayBatchForNode(NodeId node, const StreamBatch& batch) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (batch.stream >= streams_.size()) {
    return Status::NotFound("unknown stream id in replayed batch");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is live; crash it before restoring");
  }
  BatchSeq prev = coordinator_->LocalVts(node).Get(batch.stream);
  BatchSeq next = prev == kNoBatch ? 0 : prev + 1;
  if (batch.seq < next) {
    // Overlap between the checkpoint log and the upstream-backup tail.
    ++fault_stats_.duplicates_suppressed;
    Bump(obs_.duplicates_suppressed);
    return Status::Ok();
  }
  if (batch.seq > next) {
    return Status::FailedPrecondition(
        "gap in restore replay: expected batch " + std::to_string(next) +
        " of stream " + std::to_string(batch.stream) + ", got " +
        std::to_string(batch.seq));
  }
  InjectBatch(batch, static_cast<int>(node));
  return Status::Ok();
}

Status Cluster::FinishNodeRestore(NodeId node) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is already live");
  }
  if (crash_marked_.count(node) == 0) {
    // Down but never taken through CrashNode (e.g. direct fabric
    // manipulation): its volatile state was never reset and the coordinator
    // never forgot its progress, so the restore invariants below are
    // meaningless. Surfacing success here used to mask exactly that misuse.
    return Status::InvalidArgument(
        "node " + std::to_string(node) +
        " was never crash-marked; use CrashNode before restoring");
  }
  // The node may only rejoin once its replayed progress covers the survivors'
  // stable frontier; reactivating early would regress Stable_VTS and stall
  // (or un-trigger) windows that already fired.
  VectorTimestamp stable = coordinator_->StableVts();
  VectorTimestamp local = coordinator_->LocalVts(node);
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    BatchSeq need = stable.Get(s);
    if (need == kNoBatch) {
      continue;
    }
    BatchSeq have = local.Get(s);
    if (have == kNoBatch || have < need) {
      return Status::FailedPrecondition(
          "node " + std::to_string(node) + " lags stream " + std::to_string(s) +
          ": restored through " +
          (have == kNoBatch ? std::string("nothing") : std::to_string(have)) +
          ", survivors at " + std::to_string(need));
    }
  }
  fabric_->SetNodeUp(node, true);
  coordinator_->SetNodeActive(node, true);
  crash_marked_.erase(node);
  if (health_ != nullptr) {
    // Restart the node's heartbeat history; stale pre-crash inter-arrival
    // gaps would instantly re-quarantine it.
    health_->Reset(node, last_health_ms_);
  }
  BumpMqoGeneration();
  return Status::Ok();
}

Status Cluster::BeginShardMove(uint32_t shard, NodeId target) {
  if (shard >= shard_map_.shard_count()) {
    return Status::NotFound("unknown shard " + std::to_string(shard));
  }
  if (target >= config_.nodes) {
    return Status::NotFound("unknown target node " + std::to_string(target));
  }
  if (migration_ != nullptr) {
    return Status::FailedPrecondition(
        "a shard migration is already in flight (shard " +
        std::to_string(migration_->shard) + ")");
  }
  const NodeId source = shard_map_.OwnerOfShard(shard);
  if (source == target) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " is already owned by node " +
                                   std::to_string(target));
  }
  if (!fabric_->node_up(source)) {
    return Status::FailedPrecondition("source node " + std::to_string(source) +
                                      " is down");
  }
  // A quarantined node is never a migration target (its shard would be
  // unreadable right after cutover), nor is a draining one (the shard would
  // immediately have to move again).
  if (!fabric_->node_up(target) || !fabric_->node_serving(target)) {
    return Status::FailedPrecondition("migration target " +
                                      std::to_string(target) +
                                      " is not up and serving");
  }
  if (draining_.count(target) > 0) {
    return Status::FailedPrecondition("migration target " +
                                      std::to_string(target) + " is draining");
  }
  if (migration_taints_.count({shard, target}) > 0) {
    return Status::FailedPrecondition(
        "target " + std::to_string(target) +
        " holds a stale partial copy of shard " + std::to_string(shard) +
        " from an aborted transfer; crash-reset it or pick another target");
  }
  // A former owner keeps its copy of the shard at cutover (reclamation is
  // deferred), so a shard moving *back* would land on stale data and
  // duplicate every edge. Purge the target's copy — persistent keys, stream
  // indexes, and transient slices — before the fresh one is built, so base
  // copy + history replay + dual-apply rebuild the shard exactly once.
  {
    const auto view = shard_map_.View();
    auto in_shard = [&view, shard](VertexId v) {
      return view->ShardOfVertex(v) == shard;
    };
    uint64_t purged = stores_raw_[target]->PurgeShard(in_shard);
    for (size_t s = 0; s < streams_.size(); ++s) {
      stream_indexes_raw_[s][target]->PurgeShard(in_shard);
      purged += transients_raw_[s][target]->PurgeShard(in_shard);
    }
    reconfig_stats_.stale_edges_purged += purged;
    Bump(obs_.reconfig_stale_edges_purged, purged);
  }
  // From here on every read must filter by ownership: even if this very
  // first migration aborts, the partial copy on the target has to stay
  // invisible. No epoch bump — ownership has not changed.
  shard_map_.MarkDirty();
  migration_ = std::make_unique<Migration>();
  migration_->shard = shard;
  migration_->source = source;
  migration_->target = target;
  migration_->begin_next = delivered_next_;
  migration_->replayed_next.assign(streams_.size(), 0);
  ++reconfig_stats_.moves_started;
  Bump(obs_.reconfig_moves_started);
  if (tracer_ != nullptr) {
    tracer_->Instant("reconfig", "reconfig/begin", source);
  }
  return Status::Ok();
}

Status Cluster::LoadBaseForShard(std::span<const Triple> triples) {
  if (migration_ == nullptr) {
    return Status::FailedPrecondition("no shard migration in flight");
  }
  const auto view = shard_map_.View();
  const uint32_t shard = migration_->shard;
  const NodeId target = migration_->target;
  uint64_t copied = 0;
  for (const Triple& t : triples) {
    if (view->ShardOfVertex(t.subject) == shard) {
      stores_raw_[target]->InjectEdgeMigrated(
          Key(t.subject, t.predicate, Dir::kOut), t.object,
          GStore::kBaseSnapshot, nullptr);
      ++copied;
    }
    if (view->ShardOfVertex(t.object) == shard) {
      stores_raw_[target]->InjectEdgeMigrated(
          Key(t.object, t.predicate, Dir::kIn), t.subject,
          GStore::kBaseSnapshot, nullptr);
      ++copied;
    }
  }
  if (copied > 0) {
    fabric_->Message(migration_->source, target, copied * kTupleWireBytes);
  }
  migration_->edges_copied += copied;
  return Status::Ok();
}

Status Cluster::ReplayBatchForShard(const StreamBatch& batch) {
  if (migration_ == nullptr) {
    return Status::FailedPrecondition("no shard migration in flight");
  }
  if (batch.stream >= streams_.size()) {
    return Status::NotFound("unknown stream id in replayed batch");
  }
  Migration& mig = *migration_;
  if (batch.seq >= mig.begin_next[batch.stream]) {
    // Delivered at or after Begin: dual-apply already mirrored (or will
    // mirror) this batch's shard partition. Replaying it too would duplicate.
    return Status::Ok();
  }
  BatchSeq next = mig.replayed_next[batch.stream];
  if (batch.seq < next) {
    return Status::Ok();  // Checkpoint-log overlap: already replayed.
  }
  if (batch.seq > next) {
    return Status::FailedPrecondition(
        "gap in shard replay: expected batch " + std::to_string(next) +
        " of stream " + std::to_string(batch.stream) + ", got " +
        std::to_string(batch.seq));
  }
  mig.replayed_next[batch.stream] = batch.seq + 1;
  const auto view = shard_map_.View();
  // Same SN the live injection used: folds either extend that snapshot's
  // marker or defer into a newer one (visible once the cutover barrier
  // passes — see TryCommitMigration).
  SnapshotNum sn = coordinator_->PlanSnFor(batch.stream, batch.seq);
  std::vector<AppendSpan> spans;
  std::vector<std::pair<Key, VertexId>> timing;
  uint64_t edges = 0;
  for (const StreamTuple& t : batch.tuples) {
    Key out_key(t.triple.subject, t.triple.predicate, Dir::kOut);
    Key in_key(t.triple.object, t.triple.predicate, Dir::kIn);
    if (view->ShardOfVertex(t.triple.subject) == mig.shard) {
      ++edges;
      if (t.kind == TupleKind::kTiming) {
        timing.emplace_back(out_key, t.triple.object);
      } else {
        stores_raw_[mig.target]->InjectEdgeMigrated(out_key, t.triple.object,
                                                    sn, &spans);
      }
    }
    if (view->ShardOfVertex(t.triple.object) == mig.shard) {
      ++edges;
      if (t.kind == TupleKind::kTiming) {
        timing.emplace_back(in_key, t.triple.subject);
      } else {
        stores_raw_[mig.target]->InjectEdgeMigrated(in_key, t.triple.subject,
                                                    sn, &spans);
      }
    }
  }
  // Fold into the target's existing per-batch structures. Either merge may
  // find the batch already evicted (GC horizon passed it) — then no live
  // window can reach it and skipping is correct.
  if (!spans.empty()) {
    stream_indexes_raw_[batch.stream][mig.target]->MergeBatch(batch.seq, spans);
  }
  if (!timing.empty()) {
    transients_raw_[batch.stream][mig.target]->MergeSlice(batch.seq, timing);
  }
  if (edges > 0) {
    fabric_->Message(mig.source, mig.target, edges * kTupleWireBytes);
    injected_window_edges_[batch.stream][mig.target] += edges;
  }
  mig.edges_copied += edges;
  ++reconfig_stats_.batches_replayed;
  return Status::Ok();
}

Status Cluster::FinishShardTransfer() {
  if (migration_ == nullptr) {
    return Status::FailedPrecondition("no shard migration in flight");
  }
  migration_->transfer_done = true;
  TryCommitMigration();
  return Status::Ok();
}

Status Cluster::AbortShardMove(const std::string& reason) {
  if (migration_ == nullptr) {
    return Status::FailedPrecondition("no shard migration in flight");
  }
  AbortMigrationInternal(/*taint=*/true, reason);
  return Status::Ok();
}

void Cluster::TryCommitMigration() {
  if (migration_ == nullptr || !migration_->transfer_done) {
    return;
  }
  const NodeId target = migration_->target;
  // The target must be able to serve the shard the instant the epoch bumps,
  // and must hold every batch (no parked partitions).
  if (!fabric_->node_up(target) || !fabric_->node_serving(target) ||
      !backlog_[target].empty()) {
    return;
  }
  // Visibility barrier: replayed history and dual-applied batches may have
  // folded into markers as new as the newest delivered batch's plan SN.
  // Cut over only once Stable_SN covers that SN, so any post-commit read
  // (always at <= Stable_SN... the markers are <= its own snapshot) sees
  // every fold. Until then old-epoch reads keep hitting the source copy.
  const SnapshotNum stable_sn = coordinator_->StableSn();
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    if (delivered_next_[s] == 0) {
      continue;
    }
    if (coordinator_->PlanSnFor(s, delivered_next_[s] - 1) > stable_sn) {
      return;
    }
  }
  Status st = shard_map_.CommitMove(migration_->shard, target);
  assert(st.ok());
  (void)st;
  reconfig_stats_.edges_copied += migration_->edges_copied;
  ++reconfig_stats_.moves_committed;
  Bump(obs_.reconfig_moves_committed);
  Bump(obs_.reconfig_edges_copied, migration_->edges_copied);
  if (tracer_ != nullptr) {
    tracer_->Instant("reconfig", "reconfig/commit", target);
  }
  migration_.reset();
  BumpMqoGeneration();
}

void Cluster::AbortMigrationInternal(bool taint, const std::string& reason) {
  if (migration_ == nullptr) {
    return;
  }
  if (taint) {
    migration_taints_.insert({migration_->shard, migration_->target});
  }
  ++reconfig_stats_.moves_aborted;
  Bump(obs_.reconfig_moves_aborted);
  if (tracer_ != nullptr) {
    tracer_->Instant("reconfig", "reconfig/abort", migration_->source);
  }
  (void)reason;  // Carried for tests/tracing symmetry; rollback is silent.
  // Rollback is just forgetting: the epoch never moved, ownership filtering
  // keeps the partial target copy invisible, and the source still owns (and
  // has been serving) the shard throughout.
  migration_.reset();
  BumpMqoGeneration();
}

void Cluster::AbortMigrationFor(NodeId node) {
  if (migration_ == nullptr ||
      (node != migration_->source && node != migration_->target)) {
    return;
  }
  // A crashed *target* resets its stores, so no stale partial copy survives
  // to taint the pair; a crashed *source* strands the partial copy on the
  // still-live target.
  AbortMigrationInternal(/*taint=*/node == migration_->source,
                         "migration endpoint crashed");
}

StatusOr<NodeId> Cluster::AddNode() {
  if (migration_ != nullptr) {
    return Status::FailedPrecondition(
        "cannot grow the cluster while a shard migration is in flight");
  }
  int fabric_id = fabric_->AddNode();
  if (fabric_id < 0) {
    return Status::ResourceExhausted("fabric node capacity exhausted");
  }
  // Seed the newcomer's Local_VTS at the delivered frontier: it has missed
  // nothing it is responsible for (it owns no shards yet), Stable_VTS must
  // not regress, and its next in-order report is delivered_next_[s].
  VectorTimestamp seed(streams_.size());
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    if (delivered_next_[s] > 0) {
      seed.Set(s, delivered_next_[s] - 1);
    }
  }
  NodeId id = coordinator_->AddNode(seed);
  assert(id == static_cast<NodeId>(fabric_id));
  (void)fabric_id;
  stores_.push_back(std::make_unique<GStore>(id));
  stores_raw_.push_back(stores_.back().get());
  for (size_t s = 0; s < streams_.size(); ++s) {
    stream_indexes_[s].push_back(std::make_unique<StreamIndex>());
    stream_indexes_raw_[s].push_back(stream_indexes_[s].back().get());
    transients_[s].push_back(
        std::make_unique<TransientStore>(config_.transient_budget_bytes));
    transients_raw_[s].push_back(transients_[s].back().get());
    WireEvictionListeners(static_cast<StreamId>(s), id);
    injected_window_edges_[s].push_back(0);
  }
  backlog_.emplace_back();
  shard_map_.AddNode();
  config_.nodes = static_cast<uint32_t>(stores_.size());
  if (health_ != nullptr) {
    // The detector's membership is fixed at construction: rebuild it over the
    // grown cluster. Heartbeat history is lost (acceptable — suspicion
    // re-accumulates within a few intervals); reset every node's arrival
    // clock so the rebuild itself does not read as a missed heartbeat.
    health_ =
        std::make_unique<FailureDetector>(config_.nodes, config_.overload.phi);
    for (NodeId n = 0; n < config_.nodes; ++n) {
      health_->Reset(n, last_health_ms_);
    }
  }
  if (straggler_ != nullptr) {
    // Same fixed-membership rebuild; EWMA history re-accumulates from the
    // health ticks' probe samples within a few intervals.
    straggler_ =
        std::make_unique<StragglerDetector>(config_.nodes, config_.straggler);
  }
  {
    std::lock_guard lock(service_mu_);
    service_hist_.resize(config_.nodes);
    service_hist_metrics_.resize(config_.nodes, nullptr);
    if constexpr (obs::kCompiledIn) {
      if (obs::MetricsRegistry* m = config_.metrics; m != nullptr) {
        service_hist_metrics_[id] = m->GetHistogram(
            obs::MetricsRegistry::Labeled("wukongs_node_service_latency_ns",
                                          {{"node", std::to_string(id)}}));
      }
    }
  }
  ++reconfig_stats_.nodes_added;
  if (tracer_ != nullptr) {
    tracer_->Instant("reconfig", "reconfig/add_node", id);
  }
  BumpMqoGeneration();
  return id;
}

Status Cluster::BeginDrain(NodeId node) {
  if (node >= config_.nodes) {
    return Status::NotFound("unknown node id");
  }
  if (draining_.count(node) > 0) {
    return Status::AlreadyExists("node " + std::to_string(node) +
                                 " is already draining");
  }
  if (!fabric_->node_up(node)) {
    return Status::FailedPrecondition("node is down; restore it or leave it");
  }
  NodeId fallback = node;
  for (NodeId n = 0; n < config_.nodes; ++n) {
    if (n != node && fabric_->node_serving(n) && draining_.count(n) == 0) {
      fallback = n;
      break;
    }
  }
  if (fallback == node) {
    return Status::FailedPrecondition(
        "no serving non-draining node to take over from " +
        std::to_string(node));
  }
  draining_.insert(node);
  // Shed coordinator duties immediately: ingest (Adaptor+Dispatcher) and
  // registered continuous queries re-home to the fallback. The node keeps
  // serving reads for shards it still owns until MoveShard empties it.
  for (StreamState& state : streams_) {
    if (state.ingest_node == node) {
      state.ingest_node = fallback;
    }
  }
  RehomeRegistrations(node, fallback);
  ++reconfig_stats_.drains_started;
  if (tracer_ != nullptr) {
    tracer_->Instant("reconfig", "reconfig/drain", node);
  }
  return Status::Ok();
}

void Cluster::RehomeRegistrations(NodeId from, NodeId to) {
  for (Registration& reg : registrations_) {
    if (reg.home != from) {
      continue;
    }
    reg.home = to;
    // Locality-aware index replication follows the query to its new home.
    for (StreamId sid : reg.stream_ids) {
      streams_[sid].subscribers.insert(to);
    }
    ++reconfig_stats_.rehomed_registrations;
    Bump(obs_.reconfig_rehomed_registrations);
  }
  // Template-group probes are registrations too (just not user-visible):
  // the shared evaluation must leave a draining node with its members.
  std::lock_guard lock(mqo_mu_);
  for (auto& g : groups_) {
    if (g->live && g->probe.home == from) {
      g->probe.home = to;
      for (StreamId sid : g->probe.stream_ids) {
        streams_[sid].subscribers.insert(to);
      }
    }
  }
  BumpMqoGeneration();
}

void Cluster::UpdateScrapedMetrics() {
  if constexpr (!obs::kCompiledIn) {
    return;
  }
  obs::MetricsRegistry* m = config_.metrics;
  if (m == nullptr) {
    return;
  }
  // Frontier of a VTS entry as "batches completed" so kNoBatch (nothing
  // injected yet) compares as 0 against batch seqs, which start at 0.
  auto frontier = [](BatchSeq b) -> uint64_t {
    return b == kNoBatch ? 0 : static_cast<uint64_t>(b) + 1;
  };
  VectorTimestamp stable = coordinator_->StableVts();
  std::vector<VectorTimestamp> locals;
  locals.reserve(config_.nodes);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    locals.push_back(coordinator_->LocalVts(n));
  }
  const StreamStatsSnapshot rates = config_.replan.enabled
                                        ? stream_stats_.Snapshot()
                                        : StreamStatsSnapshot{};
  for (StreamId s = 0; s < static_cast<StreamId>(streams_.size()); ++s) {
    const std::string& name = streams_[s].name;
    uint64_t lead = frontier(stable.Get(s));
    for (NodeId n = 0; n < config_.nodes; ++n) {
      lead = std::max(lead, frontier(locals[n].Get(s)));
    }
    m->GetGauge(obs::MetricsRegistry::Labeled("wukongs_vts_lag_batches",
                                              {{"stream", name}}))
        ->Set(static_cast<double>(lead - frontier(stable.Get(s))));
    m->GetGauge(obs::MetricsRegistry::Labeled("wukongs_door_pending_batches",
                                              {{"stream", name}}))
        ->Set(static_cast<double>(PendingBatches(s)));
    m->GetGauge(obs::MetricsRegistry::Labeled("wukongs_door_pressure",
                                              {{"stream", name}}))
        ->Set(streams_[s].pressure.level());
    if (config_.replan.enabled) {
      m->GetGauge(obs::MetricsRegistry::Labeled(
                      "wukongs_stream_rate_tuples_per_sec", {{"stream", name}}))
          ->Set(rates.RateOf(s));
    }
    // Stream-index lookups and transient GC reclaim, summed across nodes.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t gc_slices = 0;
    uint64_t gc_bytes = 0;
    for (NodeId n = 0; n < config_.nodes; ++n) {
      StreamIndex::LookupStats ls = stream_indexes_raw_[s][n]->lookup_stats();
      hits += ls.hits;
      misses += ls.misses;
      TransientStore::GcStats gs = transients_raw_[s][n]->gc_stats();
      gc_slices += gs.slices_reclaimed;
      gc_bytes += gs.bytes_reclaimed;
    }
    m->GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_stream_index_lookups_total",
                      {{"stream", name}, {"result", "hit"}}))
        ->Set(hits);
    m->GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_stream_index_lookups_total",
                      {{"stream", name}, {"result", "miss"}}))
        ->Set(misses);
    m->GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_transient_gc_slices_reclaimed_total",
                      {{"stream", name}}))
        ->Set(gc_slices);
    m->GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_transient_gc_bytes_reclaimed_total",
                      {{"stream", name}}))
        ->Set(gc_bytes);
  }
  if (health_ != nullptr) {
    for (NodeId n = 0; n < config_.nodes; ++n) {
      m->GetGauge(obs::MetricsRegistry::Labeled(
                      "wukongs_phi_suspicion", {{"node", std::to_string(n)}}))
          ->Set(health_->Phi(n, last_health_ms_));
    }
  }
  m->GetGauge("wukongs_stable_sn")
      ->Set(static_cast<double>(coordinator_->StableSn()));
  m->GetCounter("wukongs_plan_extensions_total")
      ->Set(coordinator_->plan_extensions());
  MemoryReport mem = Memory();
  m->GetGauge("wukongs_memory_store_bytes")
      ->Set(static_cast<double>(mem.store_bytes));
  m->GetGauge("wukongs_memory_snapshot_meta_bytes")
      ->Set(static_cast<double>(mem.snapshot_meta_bytes));
  m->GetGauge("wukongs_memory_stream_index_bytes")
      ->Set(static_cast<double>(mem.stream_index_bytes));
  m->GetGauge("wukongs_memory_transient_bytes")
      ->Set(static_cast<double>(mem.transient_bytes));
  FabricStats fs = fabric_->stats();
  m->GetCounter("wukongs_fabric_one_sided_reads_total")->Set(fs.one_sided_reads);
  m->GetCounter("wukongs_fabric_one_sided_read_bytes_total")
      ->Set(fs.one_sided_read_bytes);
  m->GetCounter("wukongs_fabric_messages_total")->Set(fs.messages);
  m->GetCounter("wukongs_fabric_message_bytes_total")->Set(fs.message_bytes);
  m->GetCounter("wukongs_fabric_failed_reads_total")->Set(fs.failed_reads);
  m->GetCounter("wukongs_fabric_failed_messages_total")->Set(fs.failed_messages);
  m->GetCounter("wukongs_fabric_deadline_cancelled_total")
      ->Set(fs.deadline_cancelled);
  if (straggler_ != nullptr) {
    m->GetGauge("wukongs_straggler_slow_nodes")
        ->Set(static_cast<double>(straggler_->slow_count()));
    for (NodeId n = 0; n < config_.nodes; ++n) {
      m->GetGauge(obs::MetricsRegistry::Labeled(
                      "wukongs_straggler_ewma_ns",
                      {{"node", std::to_string(n)}}))
          ->Set(straggler_->ewma_ns(n));
    }
  }
  if (config_.hedge.enabled) {
    m->GetGauge("wukongs_hedge_delay_ns")->Set(HedgeDelayNs());
  }
  m->GetGauge("wukongs_nodes_up")->Set(static_cast<double>(UpNodeCount()));
  m->GetGauge("wukongs_nodes_serving")
      ->Set(static_cast<double>(ServingNodeCount()));
  m->GetGauge("wukongs_reconfig_epoch")
      ->Set(static_cast<double>(shard_map_.epoch()));
  m->GetGauge("wukongs_reconfig_migration_active")
      ->Set(migration_ != nullptr ? 1.0 : 0.0);
  m->GetGauge("wukongs_reconfig_draining_nodes")
      ->Set(static_cast<double>(draining_.size()));
  // Delta-cache residency across registrations (§5.9); the hit/miss/
  // invalidation counters are bumped at their event sites.
  size_t delta_entries = 0;
  size_t delta_bytes = 0;
  for (const Registration& reg : registrations_) {
    if (reg.delta_cache != nullptr) {
      delta_entries += reg.delta_cache->EntryCount();
      delta_bytes += reg.delta_cache->MemoryBytes();
    }
  }
  m->GetGauge("wukongs_delta_cache_entries")
      ->Set(static_cast<double>(delta_entries));
  m->GetGauge("wukongs_delta_cache_bytes")
      ->Set(static_cast<double>(delta_bytes));
  // Template-group residency (§5.12); the shared-eval/fan-out counters are
  // bumped at their event sites.
  size_t mqo_groups = 0;
  size_t mqo_members = 0;
  {
    std::lock_guard lock(mqo_mu_);
    for (const auto& g : groups_) {
      if (!g->live) {
        continue;
      }
      ++mqo_groups;
      std::lock_guard glock(g->mu);
      mqo_members += g->members.size();
    }
  }
  m->GetGauge("wukongs_mqo_groups")->Set(static_cast<double>(mqo_groups));
  m->GetGauge("wukongs_mqo_grouped_members")
      ->Set(static_cast<double>(mqo_members));
}

std::string Cluster::DumpMetrics(const std::string& name_filter) {
  if constexpr (!obs::kCompiledIn) {
    (void)name_filter;
    return {};
  }
  if (config_.metrics == nullptr) {
    return {};
  }
  UpdateScrapedMetrics();
  return config_.metrics->TextDump(name_filter);
}

}  // namespace wukongs
