#include "src/sparql/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace wukongs {
namespace {

enum class TokKind {
  kEnd,
  kWord,      // Bare identifier / keyword / IRI content.
  kVariable,  // ?name
  kNumber,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kDot,
  kOp,  // < <= > >= = !=
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0.0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        out.push_back(Token{TokKind::kEnd, "", 0.0, pos_});
        return out;
      }
      char c = text_[pos_];
      size_t start = pos_;
      if (c == '{') {
        out.push_back({TokKind::kLBrace, "{", 0.0, start});
        ++pos_;
      } else if (c == '}') {
        out.push_back({TokKind::kRBrace, "}", 0.0, start});
        ++pos_;
      } else if (c == '(') {
        out.push_back({TokKind::kLParen, "(", 0.0, start});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, ")", 0.0, start});
        ++pos_;
      } else if (c == '[') {
        out.push_back({TokKind::kLBracket, "[", 0.0, start});
        ++pos_;
      } else if (c == ']') {
        out.push_back({TokKind::kRBracket, "]", 0.0, start});
        ++pos_;
      } else if (c == '.' && !(pos_ + 1 < text_.size() && IsWordChar(text_[pos_ + 1]) &&
                               pos_ > 0 && std::isdigit(text_[pos_ - 1]))) {
        out.push_back({TokKind::kDot, ".", 0.0, start});
        ++pos_;
      } else if (c == '?') {
        ++pos_;
        std::string name = ReadWord();
        if (name.empty()) {
          return Status::InvalidArgument("bare '?' in query");
        }
        out.push_back({TokKind::kVariable, name, 0.0, start});
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        // Either a comparison operator or a bracketed IRI.
        if (c == '<' && pos_ + 1 < text_.size() && IsIriChar(text_[pos_ + 1])) {
          // Bracketed IRI: <...>
          ++pos_;
          size_t end = text_.find('>', pos_);
          if (end == std::string_view::npos) {
            return Status::InvalidArgument("unterminated '<' IRI");
          }
          out.push_back(
              {TokKind::kWord, std::string(text_.substr(pos_, end - pos_)), 0.0, start});
          pos_ = end + 1;
        } else {
          std::string op(1, c);
          ++pos_;
          if (pos_ < text_.size() && text_[pos_] == '=') {
            op += '=';
            ++pos_;
          }
          out.push_back({TokKind::kOp, op, 0.0, start});
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t consumed = 0;
        std::string word = ReadWord();
        double value = std::stod(word, &consumed);
        if (consumed == word.size()) {
          out.push_back({TokKind::kNumber, word, value, start});
        } else {
          // Number-led word such as a duration `10s`; tokenize as word.
          out.push_back({TokKind::kWord, word, 0.0, start});
        }
      } else if (IsWordChar(c)) {
        out.push_back({TokKind::kWord, ReadWord(), 0.0, start});
      } else {
        std::ostringstream os;
        os << "unexpected character '" << c << "' at offset " << pos_;
        return Status::InvalidArgument(os.str());
      }
    }
  }

 private:
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '#' || c == ':' || c == '/' || c == '.' || c == '+' || c == ',' ||
           c == '@';
  }
  static bool IsIriChar(char c) {
    return IsWordChar(c) && c != '=';
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string ReadWord() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsWordChar(text_[pos_])) {
      ++pos_;
    }
    std::string w(text_.substr(start, pos_ - start));
    // A trailing '.' is the triple terminator, not part of the word. Keep at
    // least one character so the lexer always makes progress (an all-dots
    // span would otherwise strip to nothing and loop forever).
    while (w.size() > 1 && w.back() == '.') {
      w.pop_back();
      --pos_;
    }
    return w;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, StringServer* strings)
      : tokens_(std::move(tokens)), strings_(strings) {}

  StatusOr<Query> Parse() {
    Query q;
    if (PeekKeyword("REGISTER")) {
      Advance();
      if (!ConsumeKeyword("QUERY")) {
        return Err("expected QUERY after REGISTER");
      }
      if (Peek().kind != TokKind::kWord) {
        return Err("expected query name");
      }
      q.name = Advance().text;
      q.continuous = true;
      if (PeekKeyword("AS")) {
        Advance();
      }
    }
    if (!ConsumeKeyword("SELECT")) {
      return Err("expected SELECT");
    }
    if (PeekKeyword("DISTINCT")) {
      Advance();
      q.distinct = true;
    }
    Status s = ParseSelect(&q);
    if (!s.ok()) {
      return s;
    }
    while (PeekKeyword("FROM")) {
      Advance();
      s = ParseFrom(&q);
      if (!s.ok()) {
        return s;
      }
    }
    if (!ConsumeKeyword("WHERE")) {
      return Err("expected WHERE");
    }
    if (Peek().kind != TokKind::kLBrace) {
      return Err("expected '{' after WHERE");
    }
    Advance();
    if (Peek().kind == TokKind::kLBrace) {
      // Alternation: WHERE { { branch } UNION { branch } ... }.
      while (true) {
        if (Peek().kind != TokKind::kLBrace) {
          return Err("expected '{' opening a UNION branch");
        }
        Advance();
        std::vector<TriplePattern> branch;
        s = ParseBody(&q, &branch, kGraphStored, /*in_graph=*/false,
                      /*allow_optional=*/false);
        if (!s.ok()) {
          return s;
        }
        q.unions.push_back(std::move(branch));
        if (!ConsumeKeyword("UNION")) {
          break;
        }
      }
      if (q.unions.size() < 2) {
        return Err("braced group at WHERE top level requires UNION branches");
      }
      // FILTERs after the alternation apply to every branch's solutions.
      while (PeekKeyword("FILTER")) {
        Advance();
        s = ParseFilter(&q);
        if (!s.ok()) {
          return s;
        }
      }
      if (Peek().kind != TokKind::kRBrace) {
        return Err("expected '}' closing WHERE after UNION branches");
      }
      Advance();
    } else {
      s = ParseBody(&q, &q.patterns, kGraphStored, /*in_graph=*/false,
                    /*allow_optional=*/true);
      if (!s.ok()) {
        return s;
      }
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      if (!ConsumeKeyword("BY")) {
        return Err("expected BY after GROUP");
      }
      while (Peek().kind == TokKind::kVariable) {
        auto var = VarSlot(&q, Advance().text);
        q.group_by.push_back(var);
      }
      if (q.group_by.empty()) {
        return Err("GROUP BY with no variables");
      }
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      if (!ConsumeKeyword("BY")) {
        return Err("expected BY after ORDER");
      }
      while (true) {
        bool descending = false;
        if (PeekKeyword("DESC")) {
          Advance();
          descending = true;
        } else if (PeekKeyword("ASC")) {
          Advance();
        }
        bool wrapped = Peek().kind == TokKind::kLParen;
        if (wrapped) {
          Advance();
        }
        if (Peek().kind != TokKind::kVariable) {
          if (q.order_by.empty()) {
            return Err("ORDER BY with no variables");
          }
          break;
        }
        OrderKey key;
        key.var = VarSlot(&q, Advance().text);
        key.descending = descending;
        q.order_by.push_back(key);
        if (wrapped) {
          if (Peek().kind != TokKind::kRParen) {
            return Err("expected ')' in ORDER BY");
          }
          Advance();
        }
        if (Peek().kind != TokKind::kVariable && !PeekKeyword("DESC") &&
            !PeekKeyword("ASC") && Peek().kind != TokKind::kLParen) {
          break;
        }
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokKind::kNumber) {
        return Err("expected number after LIMIT");
      }
      q.limit = static_cast<size_t>(Advance().number);
      if (q.limit == 0) {
        return Err("LIMIT must be positive");
      }
    }
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing tokens after query body");
    }
    // Window kinds must be homogeneous with the query kind: continuous
    // queries slide; one-shot queries may only use absolute [FROM..TO]
    // scopes (the Time-ontology form).
    for (const WindowSpec& w : q.windows) {
      if (q.continuous && w.absolute) {
        return Err("continuous query cannot use absolute [FROM..TO] windows");
      }
      if (!q.continuous && !w.absolute) {
        return Err("one-shot query over a stream needs [FROM .. TO ..] scope");
      }
    }
    // Resolve '*'-free sanity: every select var must appear in a pattern.
    for (const SelectItem& item : q.select) {
      if (!VarUsed(q, item.var)) {
        return Err("selected variable ?" + q.var_names[item.var] +
                   " not used in any pattern");
      }
    }
    if (q.continuous && q.windows.empty()) {
      return Err("continuous query declares no stream windows");
    }
    if (!q.unions.empty()) {
      if (q.has_aggregates() || !q.group_by.empty()) {
        return Err("aggregates over UNION branches are not supported");
      }
      if (!q.optionals.empty()) {
        return Err("OPTIONAL cannot be combined with UNION");
      }
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokKind::kWord && EqualsIgnoreCase(Peek().text, kw);
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Err(std::string msg) const {
    std::ostringstream os;
    os << msg << " (near token " << pos_ << " '" << Peek().text << "')";
    return Status::InvalidArgument(os.str());
  }

  static bool VarUsed(const Query& q, int var) {
    auto in_list = [var](const std::vector<TriplePattern>& patterns) {
      for (const TriplePattern& p : patterns) {
        if ((p.subject.is_var() && p.subject.var == var) ||
            (p.object.is_var() && p.object.var == var)) {
          return true;
        }
      }
      return false;
    };
    if (in_list(q.patterns)) {
      return true;
    }
    for (const auto& group : q.optionals) {
      if (in_list(group)) {
        return true;
      }
    }
    for (const auto& branch : q.unions) {
      if (in_list(branch)) {
        return true;
      }
    }
    return false;
  }

  int VarSlot(Query* q, const std::string& name) {
    for (size_t i = 0; i < q->var_names.size(); ++i) {
      if (q->var_names[i] == name) {
        return static_cast<int>(i);
      }
    }
    q->var_names.push_back(name);
    return static_cast<int>(q->var_names.size() - 1);
  }

  Status ParseSelect(Query* q) {
    while (true) {
      if (Peek().kind == TokKind::kVariable) {
        SelectItem item;
        item.var = VarSlot(q, Advance().text);
        q->select.push_back(item);
      } else if (Peek().kind == TokKind::kWord && IsAggName(Peek().text)) {
        AggKind agg = AggFromName(Advance().text);
        if (Peek().kind != TokKind::kLParen) {
          return Err("expected '(' after aggregate");
        }
        Advance();
        if (Peek().kind != TokKind::kVariable) {
          return Err("expected variable inside aggregate");
        }
        SelectItem item;
        item.var = VarSlot(q, Advance().text);
        item.agg = agg;
        if (Peek().kind != TokKind::kRParen) {
          return Err("expected ')' after aggregate variable");
        }
        Advance();
        if (PeekKeyword("AS")) {
          Advance();
          if (Peek().kind != TokKind::kVariable) {
            return Err("expected alias variable after AS");
          }
          Advance();  // Alias is cosmetic; results are positional.
        }
        q->select.push_back(item);
      } else if (Peek().kind == TokKind::kLParen) {
        Advance();  // Allow (COUNT(?x) AS ?c) wrapping.
        Status s = ParseSelect(q);
        if (!s.ok()) {
          return s;
        }
        if (Peek().kind != TokKind::kRParen) {
          return Err("expected ')' in select list");
        }
        Advance();
      } else {
        break;
      }
    }
    if (q->select.empty()) {
      return Err("empty SELECT list");
    }
    return Status::Ok();
  }

  static bool IsAggName(const std::string& w) {
    return EqualsIgnoreCase(w, "COUNT") || EqualsIgnoreCase(w, "SUM") ||
           EqualsIgnoreCase(w, "AVG") || EqualsIgnoreCase(w, "MIN") ||
           EqualsIgnoreCase(w, "MAX");
  }
  static AggKind AggFromName(const std::string& w) {
    if (EqualsIgnoreCase(w, "COUNT")) {
      return AggKind::kCount;
    }
    if (EqualsIgnoreCase(w, "SUM")) {
      return AggKind::kSum;
    }
    if (EqualsIgnoreCase(w, "AVG")) {
      return AggKind::kAvg;
    }
    if (EqualsIgnoreCase(w, "MIN")) {
      return AggKind::kMin;
    }
    return AggKind::kMax;
  }

  Status ParseFrom(Query* q) {
    if (ConsumeKeyword("STREAM")) {
      if (Peek().kind != TokKind::kWord) {
        return Err("expected stream name after FROM STREAM");
      }
      WindowSpec w;
      w.stream_name = Advance().text;
      if (Peek().kind != TokKind::kLBracket) {
        return Err("expected '[RANGE ... STEP ...]' or '[FROM ... TO ...]' window");
      }
      Advance();
      if (ConsumeKeyword("RANGE")) {
        auto range = ParseDuration();
        if (!range.ok()) {
          return range.status();
        }
        w.range_ms = *range;
        if (!ConsumeKeyword("STEP")) {
          return Err("expected STEP");
        }
        auto step = ParseDuration();
        if (!step.ok()) {
          return step.status();
        }
        w.step_ms = *step;
        if (w.step_ms == 0 || w.range_ms == 0) {
          return Err("window RANGE/STEP must be positive");
        }
      } else if (ConsumeKeyword("FROM")) {
        // Absolute historical scope for time-based one-shot queries.
        auto from = ParseDuration();
        if (!from.ok()) {
          return from.status();
        }
        if (!ConsumeKeyword("TO")) {
          return Err("expected TO in absolute window");
        }
        auto to = ParseDuration();
        if (!to.ok()) {
          return to.status();
        }
        w.absolute = true;
        w.from_ms = *from;
        w.to_ms = *to;
        if (w.to_ms <= w.from_ms) {
          return Err("absolute window must have FROM < TO");
        }
      } else {
        return Err("expected RANGE or FROM in window");
      }
      if (Peek().kind != TokKind::kRBracket) {
        return Err("expected ']' closing window");
      }
      Advance();
      q->windows.push_back(std::move(w));
      return Status::Ok();
    }
    if (Peek().kind != TokKind::kWord) {
      return Err("expected graph name after FROM");
    }
    Advance();  // Stored graph name is cosmetic: there is one stored graph.
    return Status::Ok();
  }

  StatusOr<uint64_t> ParseDuration() {
    // Accept `10s`, `100ms`, `1m`, or `10 s`.
    std::string text;
    if (Peek().kind == TokKind::kNumber) {
      Token num = Advance();
      if (Peek().kind == TokKind::kWord &&
          (EqualsIgnoreCase(Peek().text, "ms") || EqualsIgnoreCase(Peek().text, "s") ||
           EqualsIgnoreCase(Peek().text, "m"))) {
        text = num.text + Advance().text;
      } else {
        text = num.text + "s";  // Default unit: seconds.
      }
    } else if (Peek().kind == TokKind::kWord) {
      text = Advance().text;
    } else {
      return Err("expected duration");
    }
    size_t i = 0;
    while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                               text[i] == '.')) {
      ++i;
    }
    if (i == 0) {
      return Status::InvalidArgument("bad duration: " + text);
    }
    double value = std::stod(text.substr(0, i));
    std::string unit = text.substr(i);
    double ms = 0.0;
    if (EqualsIgnoreCase(unit, "ms")) {
      ms = value;
    } else if (EqualsIgnoreCase(unit, "s") || unit.empty()) {
      ms = value * 1000.0;
    } else if (EqualsIgnoreCase(unit, "m")) {
      ms = value * 60000.0;
    } else {
      return Status::InvalidArgument("bad duration unit: " + unit);
    }
    return static_cast<uint64_t>(ms);
  }

  int WindowIndex(const Query& q, const std::string& name) const {
    for (size_t i = 0; i < q.windows.size(); ++i) {
      if (q.windows[i].stream_name == name) {
        return static_cast<int>(i);
      }
    }
    return kGraphStored;
  }

  Status ParseBody(Query* q, std::vector<TriplePattern>* sink, int graph,
                   bool in_graph, bool allow_optional) {
    while (true) {
      if (Peek().kind == TokKind::kRBrace) {
        Advance();
        return Status::Ok();
      }
      if (Peek().kind == TokKind::kEnd) {
        return Err("unterminated '{'");
      }
      if (Peek().kind == TokKind::kDot) {
        Advance();
        continue;
      }
      if (!in_graph && PeekKeyword("GRAPH")) {
        Advance();
        if (Peek().kind != TokKind::kWord) {
          return Err("expected graph name after GRAPH");
        }
        std::string name = Advance().text;
        int g = WindowIndex(*q, name);
        // Unknown name = the stored graph (e.g. GRAPH <X-Lab> { ... }).
        if (Peek().kind != TokKind::kLBrace) {
          return Err("expected '{' after GRAPH name");
        }
        Advance();
        Status s = ParseBody(q, sink, g, /*in_graph=*/true, /*allow_optional=*/false);
        if (!s.ok()) {
          return s;
        }
        continue;
      }
      if (!in_graph && PeekKeyword("OPTIONAL")) {
        if (!allow_optional) {
          return Err("OPTIONAL is not allowed here (no nesting, no UNION mix)");
        }
        Advance();
        if (Peek().kind != TokKind::kLBrace) {
          return Err("expected '{' after OPTIONAL");
        }
        Advance();
        std::vector<TriplePattern> group;
        Status s = ParseBody(q, &group, kGraphStored, /*in_graph=*/false,
                             /*allow_optional=*/false);
        if (!s.ok()) {
          return s;
        }
        if (group.empty()) {
          return Err("empty OPTIONAL group");
        }
        q->optionals.push_back(std::move(group));
        continue;
      }
      if (PeekKeyword("FILTER")) {
        Advance();
        Status s = ParseFilter(q);
        if (!s.ok()) {
          return s;
        }
        continue;
      }
      Status s = ParseTriple(q, sink, graph);
      if (!s.ok()) {
        return s;
      }
    }
  }

  StatusOr<Term> ParseTerm(Query* q) {
    if (Peek().kind == TokKind::kVariable) {
      return Term::Variable(VarSlot(q, Advance().text));
    }
    if (Peek().kind == TokKind::kWord || Peek().kind == TokKind::kNumber) {
      return Term::Constant(strings_->InternVertex(Advance().text));
    }
    return Err("expected term");
  }

  Status ParseTriple(Query* q, std::vector<TriplePattern>* sink, int graph) {
    auto subject = ParseTerm(q);
    if (!subject.ok()) {
      return subject.status();
    }
    if (Peek().kind != TokKind::kWord) {
      return Err("expected predicate");
    }
    PredicateId pred = strings_->InternPredicate(Advance().text);
    auto object = ParseTerm(q);
    if (!object.ok()) {
      return object.status();
    }
    TriplePattern p;
    p.subject = *subject;
    p.predicate = pred;
    p.object = *object;
    p.graph = graph;
    sink->push_back(p);
    return Status::Ok();
  }

  Status ParseFilter(Query* q) {
    if (Peek().kind != TokKind::kLParen) {
      return Err("expected '(' after FILTER");
    }
    Advance();
    if (Peek().kind != TokKind::kVariable) {
      return Err("FILTER expects a variable on the left");
    }
    FilterExpr f;
    f.var = VarSlot(q, Advance().text);
    if (Peek().kind != TokKind::kOp) {
      return Err("expected comparison operator in FILTER");
    }
    std::string op = Advance().text;
    if (op == "<") {
      f.op = FilterExpr::Op::kLt;
    } else if (op == "<=") {
      f.op = FilterExpr::Op::kLe;
    } else if (op == ">") {
      f.op = FilterExpr::Op::kGt;
    } else if (op == ">=") {
      f.op = FilterExpr::Op::kGe;
    } else if (op == "=" || op == "==") {
      f.op = FilterExpr::Op::kEq;
    } else if (op == "!=") {
      f.op = FilterExpr::Op::kNe;
    } else {
      return Err("unknown operator " + op);
    }
    if (Peek().kind == TokKind::kNumber) {
      f.numeric = true;
      f.number = Advance().number;
    } else if (Peek().kind == TokKind::kWord) {
      f.numeric = false;
      f.constant = strings_->InternVertex(Advance().text);
    } else {
      return Err("expected literal on the right of FILTER");
    }
    if (Peek().kind != TokKind::kRParen) {
      return Err("expected ')' closing FILTER");
    }
    Advance();
    q->filters.push_back(f);
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  StringServer* strings_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Query> ParseQuery(std::string_view text, StringServer* strings) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(*tokens), strings);
  return parser.Parse();
}

}  // namespace wukongs
