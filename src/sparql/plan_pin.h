// Manual plan pins (§5.14) — à la Sheldie__wukong's manual_plan/q1.fmt.
//
// A pin freezes a registered query's pattern execution order so benches and
// regression tests assert *plan-dependent* behavior (DeltaCache prefix
// reuse, fig13 recompute order) without depending on estimator internals,
// and so operators can override the adaptive planner for a known-bad query.
// Pinned registrations are exempt from adaptive re-planning.
//
// Line-oriented text format, one directive per line:
//
//   # optional comments and blank lines
//   plan v1
//   order 0 2 1
//   selective false        # optional; omitted = derive from the plan
//
// `plan v1` must be the first directive; `order` is required exactly once
// and must list a permutation of 0..n-1 (n = the pinned query's pattern
// count, validated at install time by Cluster::PinContinuousPlan).

#ifndef SRC_SPARQL_PLAN_PIN_H_
#define SRC_SPARQL_PLAN_PIN_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace wukongs {

struct PlanPin {
  std::vector<int> order;
  // Overrides the in-place vs fork-join selectivity decision; unset = derive
  // from the pinned order with the usual heuristic.
  std::optional<bool> selective;
};

// Parses the pin format. Every rejection names its reason (malformed header,
// duplicate/missing order, non-permutation, trailing junk, ...).
StatusOr<PlanPin> ParsePlanPin(std::string_view text);

// Canonical serialization; ParsePlanPin(SerializePlanPin(p)) == p.
std::string SerializePlanPin(const PlanPin& pin);

// Reads and parses a pin file (e.g. from tests/corpus/plans/).
StatusOr<PlanPin> LoadPlanPinFile(const std::string& path);

}  // namespace wukongs

#endif  // SRC_SPARQL_PLAN_PIN_H_
