// Abstract syntax for the SPARQL / C-SPARQL subset (paper Fig. 2).
//
// A query is a basic graph pattern whose triple patterns are each scoped to a
// graph: the stored graph, or one of the query's stream windows (C-SPARQL's
// `FROM STREAM <S> [RANGE r STEP s]` + `GRAPH <S> { ... }`). Continuous
// queries are registered and re-executed every step; one-shot queries run
// once against the persistent store.

#ifndef SRC_SPARQL_AST_H_
#define SRC_SPARQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace wukongs {

// A subject/object position: a constant vertex or a variable slot.
struct Term {
  enum class Kind { kConstant, kVariable };
  Kind kind = Kind::kConstant;
  VertexId constant = 0;  // Valid when kConstant.
  int var = -1;           // Valid when kVariable; index into Query::var_names.

  static Term Constant(VertexId v) {
    return Term{Kind::kConstant, v, -1};
  }
  static Term Variable(int var) {
    return Term{Kind::kVariable, 0, var};
  }
  bool is_var() const { return kind == Kind::kVariable; }
};

// Graph scope of a triple pattern: the persistent store, or a stream window.
inline constexpr int kGraphStored = -1;

struct TriplePattern {
  Term subject;
  PredicateId predicate = 0;
  Term object;
  int graph = kGraphStored;  // kGraphStored or index into Query::windows.
};

struct WindowSpec {
  std::string stream_name;
  uint64_t range_ms = 0;  // Window length.
  uint64_t step_ms = 0;   // Slide/step.

  // Absolute historical scope — the Time-ontology-style *one-shot* form
  // `FROM STREAM <S> [FROM 2s TO 8s]` (paper §4.2 footnote: time-based
  // one-shot queries). Reads stream data in [from_ms, to_ms) through the
  // stream index, no trigger involved.
  bool absolute = false;
  uint64_t from_ms = 0;
  uint64_t to_ms = 0;
};

enum class AggKind : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

struct SelectItem {
  int var = -1;
  AggKind agg = AggKind::kNone;
};

// FILTER (?v OP literal). Numeric comparisons parse the bound vertex's string
// form as a number; equality also works on plain vertex identity.
struct FilterExpr {
  enum class Op : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };
  int var = -1;
  Op op = Op::kEq;
  bool numeric = false;
  double number = 0.0;       // Valid when numeric.
  VertexId constant = 0;     // Valid when !numeric.

  // Vertex-identity evaluation for the non-numeric forms (kEq/kNe compare
  // plain ids; ordering ops are meaningless on ids and reject the row).
  // Numeric forms need a string server and are evaluated by the executor.
  bool MatchesVertex(VertexId v) const {
    switch (op) {
      case Op::kEq:
        return v == constant;
      case Op::kNe:
        return v != constant;
      default:
        return false;
    }
  }
};

// ORDER BY key: a variable slot plus direction.
struct OrderKey {
  int var = -1;
  bool descending = false;
};

struct Query {
  bool continuous = false;
  std::string name;  // REGISTER QUERY <name>; empty for one-shot.

  std::vector<std::string> var_names;  // Index = variable slot.
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<int> group_by;  // Variable slots; empty = single group or none.
  std::vector<OrderKey> order_by;
  size_t limit = 0;  // 0 = unlimited.

  std::vector<WindowSpec> windows;  // Streams consumed by this query.
  std::vector<TriplePattern> patterns;
  // OPTIONAL groups: each left-joins onto the required patterns' solutions;
  // rows without a match keep their bindings and leave the group's new
  // variables unbound (kUnboundBinding).
  std::vector<std::vector<TriplePattern>> optionals;
  // UNION branches: when non-empty, the WHERE body is an alternation — each
  // branch is a complete BGP (GRAPH scopes allowed) and the solution is the
  // bag union of the branches. `patterns` is empty in that case.
  std::vector<std::vector<TriplePattern>> unions;
  std::vector<FilterExpr> filters;

  bool has_aggregates() const {
    for (const SelectItem& s : select) {
      if (s.agg != AggKind::kNone) {
        return true;
      }
    }
    return false;
  }

  // Longest window range; the trigger needs all involved windows filled.
  uint64_t MaxRangeMs() const {
    uint64_t r = 0;
    for (const WindowSpec& w : windows) {
      r = r > w.range_ms ? r : w.range_ms;
    }
    return r;
  }
};

}  // namespace wukongs

#endif  // SRC_SPARQL_AST_H_
