// Template signatures for multi-query optimization of continuous queries
// (DESIGN.md §5.12).
//
// At the north-star scale, millions of registered continuous queries are
// instantiations of a few dozen *templates*: the same pattern shape with one
// per-user constant swapped in. CanonicalizeTemplate reduces a parsed Query
// to that shape — variables alpha-renamed into first-occurrence order, the
// single constant replaced by a designated *hole* — so the cluster can bucket
// registrations whose signatures collide into one template group, evaluate
// the shared probe query once per trigger, and fan the bindings out per hole
// value. Grouping is syntactic modulo renaming (not full BGP isomorphism):
// two queries share a group iff their pattern lists, written in the same
// order, canonicalize identically.

#ifndef SRC_SPARQL_TEMPLATE_H_
#define SRC_SPARQL_TEMPLATE_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/sparql/ast.h"

namespace wukongs {

struct TemplateSignature {
  // Grouping eligibility. Ineligible queries evaluate independently, exactly
  // as before this optimization existed; `reason` says why (tests/debug).
  bool eligible = false;
  std::string reason;

  // Canonical shape key: windows + alpha-renamed patterns/OPTIONALs/FILTERs
  // with the hole marked positionally. Everything per-member — the hole's
  // constant, the query name, SELECT/DISTINCT/ORDER BY/GROUP BY — is elided,
  // because projection and the solution modifiers re-run per member on its
  // fan-out partition. Two registrations group iff their keys are equal.
  std::string key;

  // The member's user constant (the hole's value) and the member-var ->
  // canonical-slot renaming (index = slot into Query::var_names).
  VertexId hole_constant = 0;
  std::vector<int> var_to_canon;
  int canon_vars = 0;  // Distinct variables; canonical slots are [0, n).

  // The shared probe query: the member's shape in canonical variable space,
  // the hole generalized to variable slot `hole_var` (== canon_vars), all
  // variables plus the hole selected plain, solution modifiers stripped.
  // Evaluating it once yields every member's pre-projection bindings; the
  // hole column hash-partitions them back to members.
  Query probe;
  int hole_var = -1;
};

// Canonicalizes `q` into its template signature. Eligibility requires a
// continuous query with windows, no UNION, no LIMIT, no absolute window, no
// window-scoped pattern inside an OPTIONAL (mirroring delta-cache scoping so
// one per-group DeltaCache can serve the probe), and exactly one constant
// subject/object term, located in the required patterns — zero constants,
// several constants, or a constant only inside an OPTIONAL all fall back to
// independent evaluation.
TemplateSignature CanonicalizeTemplate(const Query& q);

}  // namespace wukongs

#endif  // SRC_SPARQL_TEMPLATE_H_
