#include "src/sparql/template.h"

#include <utility>

namespace wukongs {
namespace {

TemplateSignature Ineligible(std::string reason) {
  TemplateSignature sig;
  sig.eligible = false;
  sig.reason = std::move(reason);
  return sig;
}

// First-occurrence alpha renaming: assign the next canonical slot the first
// time a variable slot is seen. Scan order (required patterns, OPTIONAL
// groups, FILTERs, then any leftover slots ascending) is part of the
// signature's definition — it is what makes renaming deterministic.
class Renamer {
 public:
  explicit Renamer(size_t slots) : map_(slots, -1) {}

  int Canon(int var) {
    if (map_[static_cast<size_t>(var)] < 0) {
      map_[static_cast<size_t>(var)] = next_++;
    }
    return map_[static_cast<size_t>(var)];
  }

  void Finish() {
    for (size_t v = 0; v < map_.size(); ++v) {
      if (map_[v] < 0) {
        map_[v] = next_++;
      }
    }
  }

  const std::vector<int>& map() const { return map_; }
  int count() const { return next_; }

 private:
  std::vector<int> map_;
  int next_ = 0;
};

}  // namespace

TemplateSignature CanonicalizeTemplate(const Query& q) {
  if (!q.continuous || q.windows.empty()) {
    return Ineligible("not a windowed continuous query");
  }
  if (!q.unions.empty()) {
    return Ineligible("UNION branches plan and execute separately");
  }
  if (q.limit != 0) {
    return Ineligible("LIMIT makes row order observable");
  }
  for (const WindowSpec& w : q.windows) {
    if (w.absolute) {
      return Ineligible("absolute [FROM..TO] scope never slides");
    }
  }
  for (const auto& group : q.optionals) {
    for (const TriplePattern& p : group) {
      if (p.graph != kGraphStored) {
        return Ineligible("window-scoped pattern inside OPTIONAL");
      }
    }
  }

  // Exactly one constant subject/object across the whole BGP is the hole; it
  // must sit in the required patterns. An OPTIONAL hole would be unsound: the
  // probe's left-join binds the generalized hole only on rows where *some*
  // constant matches, so rows where the member's specific constant fails to
  // match (but another member's succeeds) would be lost from its partition.
  int hole_pattern = -1;
  bool hole_is_subject = false;
  int constants = 0;
  for (size_t i = 0; i < q.patterns.size(); ++i) {
    if (!q.patterns[i].subject.is_var()) {
      ++constants;
      hole_pattern = static_cast<int>(i);
      hole_is_subject = true;
    }
    if (!q.patterns[i].object.is_var()) {
      ++constants;
      hole_pattern = static_cast<int>(i);
      hole_is_subject = false;
    }
  }
  int optional_constants = 0;
  for (const auto& group : q.optionals) {
    for (const TriplePattern& p : group) {
      optional_constants += p.subject.is_var() ? 0 : 1;
      optional_constants += p.object.is_var() ? 0 : 1;
    }
  }
  if (constants + optional_constants == 0) {
    return Ineligible("no constant term to designate as the hole");
  }
  if (constants + optional_constants > 1) {
    return Ineligible("multiple constant terms (ambiguous hole)");
  }
  if (constants == 0) {
    return Ineligible("constant hole inside OPTIONAL");
  }

  TemplateSignature sig;
  sig.eligible = true;
  const TriplePattern& hp = q.patterns[static_cast<size_t>(hole_pattern)];
  sig.hole_constant = hole_is_subject ? hp.subject.constant : hp.object.constant;

  Renamer ren(q.var_names.size());
  auto canon_term = [&](const Term& t, bool is_hole) -> std::string {
    if (is_hole) {
      return "$H";
    }
    if (t.is_var()) {
      return "?" + std::to_string(ren.Canon(t.var));
    }
    return "c" + std::to_string(t.constant);
  };

  std::string key;
  key += "W:";
  for (const WindowSpec& w : q.windows) {
    key += w.stream_name + "," + std::to_string(w.range_ms) + "," +
           std::to_string(w.step_ms) + ";";
  }
  key += "|P:";
  for (size_t i = 0; i < q.patterns.size(); ++i) {
    const TriplePattern& p = q.patterns[i];
    const bool here = static_cast<int>(i) == hole_pattern;
    key += std::to_string(p.graph) + "," +
           canon_term(p.subject, here && hole_is_subject) + "," +
           std::to_string(p.predicate) + "," +
           canon_term(p.object, here && !hole_is_subject) + ";";
  }
  key += "|O:";
  for (const auto& group : q.optionals) {
    key += "{";
    for (const TriplePattern& p : group) {
      key += std::to_string(p.graph) + "," + canon_term(p.subject, false) + "," +
             std::to_string(p.predicate) + "," + canon_term(p.object, false) +
             ";";
    }
    key += "}";
  }
  key += "|F:";
  for (const FilterExpr& f : q.filters) {
    key += std::to_string(ren.Canon(f.var)) + "," +
           std::to_string(static_cast<int>(f.op)) + ",";
    key += f.numeric ? ("n" + std::to_string(f.number))
                     : ("v" + std::to_string(f.constant));
    key += ";";
  }
  ren.Finish();
  // Distinct-variable count disambiguates members that carry extra variables
  // the patterns never bind (they must error per member, not silently read
  // the probe's hole column).
  key += "|V:" + std::to_string(ren.count());

  sig.key = std::move(key);
  sig.var_to_canon = ren.map();
  sig.canon_vars = ren.count();
  sig.hole_var = sig.canon_vars;

  // Probe query: canonical variable space, hole generalized, every variable
  // plus the hole selected plain, per-member modifiers stripped.
  Query probe;
  probe.continuous = true;
  probe.windows = q.windows;
  for (int v = 0; v < sig.canon_vars; ++v) {
    probe.var_names.push_back("c" + std::to_string(v));
  }
  probe.var_names.push_back("hole");
  auto remap_term = [&](const Term& t) {
    return t.is_var() ? Term::Variable(sig.var_to_canon[static_cast<size_t>(t.var)])
                      : t;
  };
  for (size_t i = 0; i < q.patterns.size(); ++i) {
    TriplePattern p = q.patterns[i];
    p.subject = remap_term(p.subject);
    p.object = remap_term(p.object);
    if (static_cast<int>(i) == hole_pattern) {
      (hole_is_subject ? p.subject : p.object) = Term::Variable(sig.hole_var);
    }
    probe.patterns.push_back(p);
  }
  for (const auto& group : q.optionals) {
    std::vector<TriplePattern> remapped;
    for (TriplePattern p : group) {
      p.subject = remap_term(p.subject);
      p.object = remap_term(p.object);
      remapped.push_back(p);
    }
    probe.optionals.push_back(std::move(remapped));
  }
  for (FilterExpr f : q.filters) {
    f.var = sig.var_to_canon[static_cast<size_t>(f.var)];
    probe.filters.push_back(f);
  }
  for (int v = 0; v <= sig.canon_vars; ++v) {
    probe.select.push_back(SelectItem{v, AggKind::kNone});
  }
  sig.probe = std::move(probe);
  return sig;
}

}  // namespace wukongs
