#include "src/sparql/results_json.h"

#include <cmath>
#include <sstream>

namespace wukongs {
namespace {

void AppendEscaped(const std::string& s, std::ostringstream* os) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\r':
        *os << "\\r";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

// Column headers like "COUNT(n)" are not valid variable names; strip to a
// JSON-friendly token.
std::string VarName(const std::string& column) {
  std::string out;
  for (char c : column) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out.push_back(c);
    }
  }
  return out.empty() ? "col" : out;
}

}  // namespace

StatusOr<std::string> ResultsToJson(const QueryResult& result,
                                    const StringServer& strings) {
  std::vector<std::string> vars;
  vars.reserve(result.columns.size());
  for (const std::string& col : result.columns) {
    vars.push_back(VarName(col));
  }

  std::ostringstream os;
  os << "{\"head\":{\"vars\":[";
  for (size_t i = 0; i < vars.size(); ++i) {
    os << (i > 0 ? "," : "") << "\"";
    AppendEscaped(vars[i], &os);
    os << "\"";
  }
  os << "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    os << (r > 0 ? "," : "") << "{";
    bool first = true;
    for (size_t c = 0; c < result.rows[r].size() && c < vars.size(); ++c) {
      const ResultValue& v = result.rows[r][c];
      if (!v.is_number && v.vid == kUnboundBinding) {
        continue;  // Unbound OPTIONAL variable: omitted per the spec.
      }
      os << (first ? "" : ",") << "\"";
      AppendEscaped(vars[c], &os);
      os << "\":";
      if (v.is_number) {
        bool integral = std::floor(v.number) == v.number;
        os << "{\"type\":\"literal\",\"datatype\":\"http://www.w3.org/2001/"
              "XMLSchema#"
           << (integral ? "integer" : "decimal") << "\",\"value\":\"";
        if (integral) {
          os << static_cast<long long>(v.number);
        } else {
          os << v.number;
        }
        os << "\"}";
      } else {
        auto str = strings.VertexString(v.vid);
        if (!str.ok()) {
          return Status::NotFound("result references unknown vertex id");
        }
        os << "{\"type\":\"uri\",\"value\":\"";
        AppendEscaped(*str, &os);
        os << "\"}";
      }
      first = false;
    }
    os << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace wukongs
