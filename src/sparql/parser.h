// Recursive-descent parser for the SPARQL / C-SPARQL subset.
//
// Grammar (informal):
//   query       := [register] select from* WHERE '{' body '}'
//   register    := REGISTER QUERY name AS
//   select      := SELECT selitem+
//   selitem     := var | agg '(' var ')' [AS var]
//   from        := FROM STREAM iri '[' RANGE dur STEP dur ']' | FROM iri
//   body        := (graph | triple '.'? | filter)*
//   graph       := GRAPH iri '{' (triple '.'?)* '}'
//   triple      := term iri term
//   filter      := FILTER '(' var cmp literal ')'
//   dur         := number ('ms' | 's' | 'm')
//
// IRIs may be written bare (`po`, `X-Lab`) or bracketed (`<X-Lab>`).
// Constants are interned through the StringServer at parse time, exactly as
// the paper's client library converts strings to IDs before hitting servers.

#ifndef SRC_SPARQL_PARSER_H_
#define SRC_SPARQL_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/rdf/string_server.h"
#include "src/sparql/ast.h"

namespace wukongs {

StatusOr<Query> ParseQuery(std::string_view text, StringServer* strings);

}  // namespace wukongs

#endif  // SRC_SPARQL_PARSER_H_
