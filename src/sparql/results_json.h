// W3C "SPARQL 1.1 Query Results JSON Format" serializer.
//
// Clients and services downstream of the engine typically want
// `application/sparql-results+json`; this renders a QueryResult into that
// shape:
//   { "head": { "vars": [...] },
//     "results": { "bindings": [ { "v": {"type": "uri", "value": "..."} } ] } }
// Numbers (aggregates) become typed literals; unbound OPTIONAL variables are
// omitted from their binding object, exactly as the spec prescribes.

#ifndef SRC_SPARQL_RESULTS_JSON_H_
#define SRC_SPARQL_RESULTS_JSON_H_

#include <string>

#include "src/common/status.h"
#include "src/engine/binding.h"
#include "src/rdf/string_server.h"

namespace wukongs {

StatusOr<std::string> ResultsToJson(const QueryResult& result,
                                    const StringServer& strings);

}  // namespace wukongs

#endif  // SRC_SPARQL_RESULTS_JSON_H_
