#include "src/sparql/plan_pin.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace wukongs {
namespace {

// Splits a line into whitespace-separated tokens, dropping a trailing
// comment ("# ..." starts a comment anywhere in the line).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (c == '#') {
      break;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!tok.empty()) {
        out.push_back(tok);
        tok.clear();
      }
    } else {
      tok.push_back(c);
    }
  }
  if (!tok.empty()) {
    out.push_back(tok);
  }
  return out;
}

Status Malformed(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("plan pin line " + std::to_string(line_no) +
                                 ": " + why);
}

}  // namespace

StatusOr<PlanPin> ParsePlanPin(std::string_view text) {
  PlanPin pin;
  bool saw_header = false;
  bool saw_order = false;
  size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> toks = Tokenize(line);
    if (toks.empty()) {
      continue;
    }
    if (!saw_header) {
      if (toks.size() != 2 || toks[0] != "plan" || toks[1] != "v1") {
        return Malformed(line_no, "expected header 'plan v1'");
      }
      saw_header = true;
      continue;
    }
    if (toks[0] == "order") {
      if (saw_order) {
        return Malformed(line_no, "duplicate 'order' directive");
      }
      if (toks.size() < 2) {
        return Malformed(line_no, "'order' needs at least one index");
      }
      for (size_t i = 1; i < toks.size(); ++i) {
        int v = 0;
        size_t used = 0;
        try {
          v = std::stoi(toks[i], &used);
        } catch (const std::exception&) {
          used = 0;
        }
        if (used != toks[i].size()) {
          return Malformed(line_no, "'" + toks[i] + "' is not an index");
        }
        if (v < 0) {
          return Malformed(line_no, "negative pattern index " + toks[i]);
        }
        pin.order.push_back(v);
      }
      // A pin must be a permutation of 0..n-1: anything else either skips a
      // pattern or runs one twice.
      std::vector<int> sorted = pin.order;
      std::sort(sorted.begin(), sorted.end());
      for (size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i] != static_cast<int>(i)) {
          return Malformed(line_no,
                           "order is not a permutation of 0.." +
                               std::to_string(pin.order.size() - 1));
        }
      }
      saw_order = true;
    } else if (toks[0] == "selective") {
      if (pin.selective.has_value()) {
        return Malformed(line_no, "duplicate 'selective' directive");
      }
      if (toks.size() != 2 || (toks[1] != "true" && toks[1] != "false")) {
        return Malformed(line_no, "'selective' takes exactly 'true' or 'false'");
      }
      pin.selective = toks[1] == "true";
    } else {
      return Malformed(line_no, "unknown directive '" + toks[0] + "'");
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("plan pin: empty input (missing 'plan v1')");
  }
  if (!saw_order) {
    return Status::InvalidArgument("plan pin: missing 'order' directive");
  }
  return pin;
}

std::string SerializePlanPin(const PlanPin& pin) {
  std::string out = "plan v1\norder";
  for (int v : pin.order) {
    out += ' ';
    out += std::to_string(v);
  }
  out += '\n';
  if (pin.selective.has_value()) {
    out += *pin.selective ? "selective true\n" : "selective false\n";
  }
  return out;
}

StatusOr<PlanPin> LoadPlanPinFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("plan pin file not readable: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParsePlanPin(buf.str());
}

}  // namespace wukongs
