// Upstream backup (paper §5): sources retain emitted batches until they are
// acknowledged as durably checkpointed, and replay the unacknowledged tail
// after a failure. This closes the gap a torn checkpoint write leaves — the
// log recovers the longest clean prefix, the upstream buffer re-supplies
// everything past it, and the injection-side sequence gate turns the
// resulting at-least-once delivery into exactly-once injection.

#ifndef SRC_FAULT_UPSTREAM_BUFFER_H_
#define SRC_FAULT_UPSTREAM_BUFFER_H_

#include <cstddef>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/stream/batch.h"

namespace wukongs {

class UpstreamBuffer {
 public:
  // Retains a copy of `batch` until acknowledged. Thread-safe.
  void Retain(const StreamBatch& batch);

  // Acknowledges every batch of `stream` with seq <= `seq` (durably
  // checkpointed); they are dropped from the buffer.
  void AckThrough(StreamId stream, BatchSeq seq);

  // Retained batches of `stream` with seq >= `from_seq`, in seq order.
  std::vector<StreamBatch> UnackedFrom(StreamId stream, BatchSeq from_seq) const;

  std::vector<StreamId> streams() const;
  size_t retained_batches() const;
  size_t retained_tuples() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<StreamId, std::deque<StreamBatch>> retained_;
};

}  // namespace wukongs

#endif  // SRC_FAULT_UPSTREAM_BUFFER_H_
