#include "src/fault/recovery_manager.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/latency_model.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace {

// Highest replayed seq per stream, so the upstream tail starts exactly where
// the log's clean prefix ended.
using Watermarks = std::unordered_map<StreamId, BatchSeq>;

void Note(Watermarks* marks, const StreamBatch& b) {
  auto [it, inserted] = marks->emplace(b.stream, b.seq);
  if (!inserted && b.seq > it->second) {
    it->second = b.seq;
  }
}

}  // namespace

RecoveryManager::RecoveryManager(std::string checkpoint_path,
                                 std::string registry_path)
    : checkpoint_path_(std::move(checkpoint_path)),
      registry_path_(std::move(registry_path)) {}

StatusOr<RecoveryReport> RecoveryManager::RecoverCluster(
    Cluster* cluster, const UpstreamBuffer* upstream) const {
  auto batches = ReadCheckpointLog(checkpoint_path_);
  if (!batches.ok()) {
    return batches.status();
  }
  RecoveryReport report;
  LatencyProbe probe;
  Watermarks marks;
  for (const StreamBatch& b : *batches) {
    Status s = cluster->ReplayBatch(b);
    if (!s.ok()) {
      return s;
    }
    Note(&marks, b);
    ++report.log_batches;
  }
  if (upstream != nullptr) {
    for (StreamId stream : upstream->streams()) {
      auto it = marks.find(stream);
      BatchSeq from = it == marks.end() ? 0 : it->second + 1;
      // From one before the watermark would also be correct (the sequence
      // gate suppresses the overlap); starting past it just avoids churn.
      for (const StreamBatch& b : upstream->UnackedFrom(stream, from)) {
        Status s = cluster->ReplayBatch(b);
        if (!s.ok()) {
          return s;
        }
        ++report.upstream_batches;
      }
    }
  }
  if (!registry_path_.empty()) {
    auto queries = ReadQueryRegistry(registry_path_);
    if (!queries.ok()) {
      return queries.status();
    }
    for (const RegisteredQueryRecord& rec : *queries) {
      auto h = cluster->RegisterContinuous(rec.text, rec.home);
      if (!h.ok()) {
        return h.status();
      }
      ++report.queries_reregistered;
    }
  }
  report.recovery_ms = probe.FinishMs();
  return report;
}

StatusOr<RecoveryReport> RecoveryManager::RestoreNode(
    Cluster* cluster, NodeId node, std::span<const Triple> base_triples,
    const UpstreamBuffer* upstream) const {
  auto batches = ReadCheckpointLog(checkpoint_path_);
  if (!batches.ok()) {
    return batches.status();
  }
  RecoveryReport report;
  LatencyProbe probe;
  Status base = cluster->LoadBaseForNode(node, base_triples);
  if (!base.ok()) {
    return base;
  }
  Watermarks marks;
  for (const StreamBatch& b : *batches) {
    Status s = cluster->ReplayBatchForNode(node, b);
    if (!s.ok()) {
      return s;
    }
    Note(&marks, b);
    ++report.log_batches;
  }
  if (upstream != nullptr) {
    for (StreamId stream : upstream->streams()) {
      auto it = marks.find(stream);
      BatchSeq from = it == marks.end() ? 0 : it->second + 1;
      for (const StreamBatch& b : upstream->UnackedFrom(stream, from)) {
        Status s = cluster->ReplayBatchForNode(node, b);
        if (!s.ok()) {
          return s;
        }
        ++report.upstream_batches;
      }
    }
  }
  Status fin = cluster->FinishNodeRestore(node);
  if (!fin.ok()) {
    return fin;
  }
  report.recovery_ms = probe.FinishMs();
  return report;
}

std::string ResultDigest(const QueryResult& result) {
  std::string out;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += result.columns[c];
  }
  out += '|';
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string r;
    for (const ResultValue& v : row) {
      if (v.is_number) {
        r += "n:" + std::to_string(v.number);
      } else {
        r += "v:" + std::to_string(v.vid);
      }
      r += ',';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  for (const std::string& r : rows) {
    out += r;
    out += ';';
  }
  return out;
}

bool WindowDedup::Accept(uint64_t query, StreamTime window_end, bool partial,
                         std::string digest) {
  auto key = std::make_pair(query, window_end);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(key, Entry{partial, std::move(digest)});
    return true;
  }
  if (it->second.partial && !partial) {
    // A complete re-execution (post-recovery) upgrades the degraded result.
    it->second = Entry{false, std::move(digest)};
    ++upgrades_;
    return true;
  }
  ++duplicates_;
  return false;
}

const std::string* WindowDedup::Find(uint64_t query,
                                     StreamTime window_end) const {
  auto it = entries_.find(std::make_pair(query, window_end));
  return it == entries_.end() ? nullptr : &it->second.digest;
}

bool WindowDedup::IsPartial(uint64_t query, StreamTime window_end) const {
  auto it = entries_.find(std::make_pair(query, window_end));
  return it != entries_.end() && it->second.partial;
}

}  // namespace wukongs
