// Deterministic, seeded fault injection (issue: robustness tentpole).
//
// A FaultInjector is a *schedule*, not a chaos monkey: every decision is
// drawn from per-category RNG streams derived from one seed, so a run with a
// given schedule is exactly reproducible — the property the recovery tests
// and the injection benches rely on. The injector covers three layers:
//
//   * transport — probabilistic failure of one-sided reads and fork-join /
//     dispatch messages (consumed by Fabric::TryOneSidedRead/TryMessage);
//   * stream    — drop / duplicate / delay of mini-batches at the
//     Adaptor -> Dispatcher boundary (consumed by Cluster's delivery path);
//   * cluster   — scheduled node crashes keyed to a (stream, batch) delivery
//     point, optionally tearing the tail of the checkpoint log to model a
//     crash mid-write (consumed by Cluster + the crash handler).
//
// Per-category RNG streams mean enabling, say, read failures does not shift
// the batch-fate sequence: fault dimensions compose without interfering.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/rdf/triple.h"

namespace wukongs {

// A scheduled node crash, fired when batch `at_seq` of `stream` reaches the
// dispatcher. `torn_tail_bytes` > 0 additionally tears that many bytes off
// the checkpoint log's tail (the crash interrupted an in-flight append);
// applied by the crash handler, which knows the log's path.
struct CrashEvent {
  NodeId node = 0;
  StreamId stream = 0;
  BatchSeq at_seq = 0;
  size_t torn_tail_bytes = 0;
};

// A slow-node window: between [from_ms, until_ms) of stream time, `node`'s
// injector is too overloaded to apply batches — deliveries destined for it
// are deferred into a backlog (and its heartbeats stop arriving, which is
// what the phi-accrual detector keys off). `catch_up_delay_ns` is charged
// per backlog batch when the node drains after the window.
struct SlowNodeEvent {
  NodeId node = 0;
  StreamTime from_ms = 0;
  StreamTime until_ms = 0;
  double catch_up_delay_ns = 10000.0;
};

// A gray-failure window: between [from_ms, until_ms) of stream time, `node`
// serves every fabric operation `slow_factor` times slower than the model —
// but keeps answering heartbeats, so the phi-accrual detector never fires.
// This is the complement of SlowNodeEvent (which *stops* heartbeats and is
// caught as a liveness failure): the node is alive, reachable, and wrong
// only in its tail. Only the straggler detector can catch it.
struct GrayFailureEvent {
  NodeId node = 0;
  StreamTime from_ms = 0;
  StreamTime until_ms = 0;
  double slow_factor = 10.0;  // Multiplier on modeled service time.
};

struct FaultSchedule {
  uint64_t seed = 1;

  // Transport faults (per attempt; retries re-draw).
  double read_failure_rate = 0.0;     // One-sided reads.
  double message_failure_rate = 0.0;  // Two-sided / fork-join messages.

  // Stream-delivery faults (per batch; mutually exclusive, drawn in this
  // priority order).
  double batch_drop_rate = 0.0;       // First delivery lost -> retransmit.
  double batch_duplicate_rate = 0.0;  // Delivered twice -> dedup gate.
  double batch_delay_rate = 0.0;      // Late delivery -> charged delay.
  double batch_delay_ns = 200000.0;   // How late a delayed batch arrives.

  // Scheduled crashes, fired at most once each.
  std::vector<CrashEvent> crashes;

  // Slow-node (overload) windows; may overlap and repeat per node.
  std::vector<SlowNodeEvent> slow_nodes;

  // Gray-failure (sustained straggler) windows; may overlap and repeat.
  std::vector<GrayFailureEvent> gray_failures;

  // Per-message jitter: each two-sided message independently pays an extra
  // uniform [0, message_jitter_ns) with probability message_jitter_rate.
  // Drawn from its own salted RNG stream, so enabling jitter perturbs no
  // other category's decision sequence.
  double message_jitter_rate = 0.0;
  double message_jitter_ns = 50000.0;
};

enum class BatchFate {
  kDeliver = 0,
  kDrop,
  kDuplicate,
  kDelay,
};

struct FaultInjectorStats {
  uint64_t failed_reads = 0;
  uint64_t failed_messages = 0;
  uint64_t dropped_batches = 0;
  uint64_t duplicated_batches = 0;
  uint64_t delayed_batches = 0;
  uint64_t crashes_fired = 0;
  uint64_t jittered_messages = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSchedule& schedule);

  const FaultSchedule& schedule() const { return schedule_; }

  // Transport layer: should this attempt fail? Thread-safe; each call
  // advances the category's RNG stream.
  bool FailRead(NodeId from, NodeId to);
  bool FailMessage(NodeId from, NodeId to);

  // Extra modeled delay this message pays (0 when jitter is off or the draw
  // misses). Own salted RNG stream; rate <= 0 draws nothing.
  double MessageJitterNs(NodeId from, NodeId to);

  // Stream layer: the fate of batch `seq` of `stream`'s next delivery.
  BatchFate FateOf(StreamId stream, BatchSeq seq);

  // Cluster layer: the crash due at this delivery point, if any. Each
  // scheduled crash fires exactly once.
  std::optional<CrashEvent> TakeCrash(StreamId stream, BatchSeq seq);

  // Overload layer: is `node` inside a scheduled slow window at stream time
  // `at_ms`? Pure schedule lookup — no RNG draw, so enabling slow windows
  // perturbs no other fault category's sequence.
  bool NodeSlowAt(NodeId node, StreamTime at_ms) const;
  // Per-batch drain cost once the node recovers (max over the node's
  // windows; 0 when none are scheduled).
  double CatchUpDelayNs(NodeId node) const;

  // Gray-failure layer: service-time multiplier for `node` at stream time
  // `at_ms` (1.0 when healthy; max over overlapping windows otherwise).
  // Pure schedule lookup — no lock, no RNG draw.
  double ServiceFactorAt(NodeId node, StreamTime at_ms) const;
  // As above at the injector's current notion of stream time. The Fabric
  // charges per-operation costs but does not know stream time, so the
  // Cluster publishes it here as the streams advance.
  double ServiceFactorNow(NodeId node) const {
    return ServiceFactorAt(node, now_ms_.load(std::memory_order_relaxed));
  }
  // True when any gray window is scheduled (cheap gate for hot paths).
  bool HasGrayFailures() const { return !schedule_.gray_failures.empty(); }
  void AdvanceNow(StreamTime now_ms) {
    now_ms_.store(now_ms, std::memory_order_relaxed);
  }
  StreamTime now_ms() const { return now_ms_.load(std::memory_order_relaxed); }

  // Torn write: truncates `bytes` off the end of the file at `path`,
  // modeling a crash that interrupted an append. Tearing more bytes than the
  // file holds empties it.
  static Status TearFileTail(const std::string& path, size_t bytes);

  FaultInjectorStats stats() const;
  void ResetStats();

  std::string DebugString() const;

 private:
  const FaultSchedule schedule_;

  mutable std::mutex mu_;
  // Independent streams per category: enabling one fault dimension does not
  // perturb another's decision sequence.
  Rng read_rng_;
  Rng message_rng_;
  Rng batch_rng_;
  Rng jitter_rng_;
  std::vector<bool> crash_fired_;
  FaultInjectorStats stats_;

  // Stream time as last published by the cluster; read by ServiceFactorNow
  // on fabric hot paths without taking mu_.
  std::atomic<StreamTime> now_ms_{0};
};

}  // namespace wukongs

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
