#include "src/fault/upstream_buffer.h"

#include <algorithm>

namespace wukongs {

void UpstreamBuffer::Retain(const StreamBatch& batch) {
  std::lock_guard lock(mu_);
  std::deque<StreamBatch>& q = retained_[batch.stream];
  if (!q.empty() && batch.seq <= q.back().seq) {
    return;  // Retransmission of an already-retained batch.
  }
  q.push_back(batch);
}

void UpstreamBuffer::AckThrough(StreamId stream, BatchSeq seq) {
  std::lock_guard lock(mu_);
  auto it = retained_.find(stream);
  if (it == retained_.end()) {
    return;
  }
  std::deque<StreamBatch>& q = it->second;
  while (!q.empty() && q.front().seq <= seq) {
    q.pop_front();
  }
}

std::vector<StreamBatch> UpstreamBuffer::UnackedFrom(StreamId stream,
                                                     BatchSeq from_seq) const {
  std::lock_guard lock(mu_);
  std::vector<StreamBatch> out;
  auto it = retained_.find(stream);
  if (it == retained_.end()) {
    return out;
  }
  for (const StreamBatch& b : it->second) {
    if (b.seq >= from_seq) {
      out.push_back(b);
    }
  }
  return out;
}

std::vector<StreamId> UpstreamBuffer::streams() const {
  std::lock_guard lock(mu_);
  std::vector<StreamId> out;
  out.reserve(retained_.size());
  for (const auto& [stream, q] : retained_) {
    out.push_back(stream);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t UpstreamBuffer::retained_batches() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [stream, q] : retained_) {
    n += q.size();
  }
  return n;
}

size_t UpstreamBuffer::retained_tuples() const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const auto& [stream, q] : retained_) {
    for (const StreamBatch& b : q) {
      n += b.tuples.size();
    }
  }
  return n;
}

}  // namespace wukongs
