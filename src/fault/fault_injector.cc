#include "src/fault/fault_injector.h"

#include <filesystem>
#include <sstream>
#include <system_error>

namespace wukongs {
namespace {

// Category salts keep the derived RNG streams statistically independent.
constexpr uint64_t kReadSalt = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kMessageSalt = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kBatchSalt = 0x165667B19E3779F9ull;
constexpr uint64_t kJitterSalt = 0x27D4EB2F165667C5ull;

}  // namespace

FaultInjector::FaultInjector(const FaultSchedule& schedule)
    : schedule_(schedule),
      read_rng_(schedule.seed ^ kReadSalt),
      message_rng_(schedule.seed ^ kMessageSalt),
      batch_rng_(schedule.seed ^ kBatchSalt),
      jitter_rng_(schedule.seed ^ kJitterSalt),
      crash_fired_(schedule.crashes.size(), false) {}

bool FaultInjector::FailRead(NodeId from, NodeId to) {
  (void)from;
  (void)to;
  if (schedule_.read_failure_rate <= 0.0) {
    return false;
  }
  std::lock_guard lock(mu_);
  if (read_rng_.Bernoulli(schedule_.read_failure_rate)) {
    ++stats_.failed_reads;
    return true;
  }
  return false;
}

bool FaultInjector::FailMessage(NodeId from, NodeId to) {
  (void)from;
  (void)to;
  if (schedule_.message_failure_rate <= 0.0) {
    return false;
  }
  std::lock_guard lock(mu_);
  if (message_rng_.Bernoulli(schedule_.message_failure_rate)) {
    ++stats_.failed_messages;
    return true;
  }
  return false;
}

double FaultInjector::MessageJitterNs(NodeId from, NodeId to) {
  (void)from;
  (void)to;
  if (schedule_.message_jitter_rate <= 0.0 || schedule_.message_jitter_ns <= 0.0) {
    return 0.0;  // No draw: jitter off leaves every other stream untouched.
  }
  std::lock_guard lock(mu_);
  if (!jitter_rng_.Bernoulli(schedule_.message_jitter_rate)) {
    return 0.0;
  }
  ++stats_.jittered_messages;
  return jitter_rng_.UniformReal(0.0, schedule_.message_jitter_ns);
}

BatchFate FaultInjector::FateOf(StreamId stream, BatchSeq seq) {
  (void)stream;
  (void)seq;
  if (schedule_.batch_drop_rate <= 0.0 && schedule_.batch_duplicate_rate <= 0.0 &&
      schedule_.batch_delay_rate <= 0.0) {
    return BatchFate::kDeliver;
  }
  std::lock_guard lock(mu_);
  // One draw decides; the rates partition [0, 1) in priority order so the
  // draw count per batch is constant regardless of which rates are set.
  double u = batch_rng_.UniformReal(0.0, 1.0);
  if (u < schedule_.batch_drop_rate) {
    ++stats_.dropped_batches;
    return BatchFate::kDrop;
  }
  u -= schedule_.batch_drop_rate;
  if (u < schedule_.batch_duplicate_rate) {
    ++stats_.duplicated_batches;
    return BatchFate::kDuplicate;
  }
  u -= schedule_.batch_duplicate_rate;
  if (u < schedule_.batch_delay_rate) {
    ++stats_.delayed_batches;
    return BatchFate::kDelay;
  }
  return BatchFate::kDeliver;
}

std::optional<CrashEvent> FaultInjector::TakeCrash(StreamId stream, BatchSeq seq) {
  std::lock_guard lock(mu_);
  for (size_t i = 0; i < schedule_.crashes.size(); ++i) {
    const CrashEvent& c = schedule_.crashes[i];
    if (!crash_fired_[i] && c.stream == stream && c.at_seq == seq) {
      crash_fired_[i] = true;
      ++stats_.crashes_fired;
      return c;
    }
  }
  return std::nullopt;
}

bool FaultInjector::NodeSlowAt(NodeId node, StreamTime at_ms) const {
  // schedule_ is immutable after construction: no lock, no RNG draw.
  for (const SlowNodeEvent& e : schedule_.slow_nodes) {
    if (e.node == node && at_ms >= e.from_ms && at_ms < e.until_ms) {
      return true;
    }
  }
  return false;
}

double FaultInjector::ServiceFactorAt(NodeId node, StreamTime at_ms) const {
  // schedule_ is immutable after construction: no lock, no RNG draw.
  double factor = 1.0;
  for (const GrayFailureEvent& e : schedule_.gray_failures) {
    if (e.node == node && at_ms >= e.from_ms && at_ms < e.until_ms &&
        e.slow_factor > factor) {
      factor = e.slow_factor;
    }
  }
  return factor;
}

double FaultInjector::CatchUpDelayNs(NodeId node) const {
  double delay = 0.0;
  for (const SlowNodeEvent& e : schedule_.slow_nodes) {
    if (e.node == node && e.catch_up_delay_ns > delay) {
      delay = e.catch_up_delay_ns;
    }
  }
  return delay;
}

Status FaultInjector::TearFileTail(const std::string& path, size_t bytes) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("cannot stat " + path + ": " + ec.message());
  }
  uintmax_t keep = bytes >= size ? 0 : size - bytes;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    return Status::Internal("cannot truncate " + path + ": " + ec.message());
  }
  return Status::Ok();
}

FaultInjectorStats FaultInjector::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void FaultInjector::ResetStats() {
  std::lock_guard lock(mu_);
  stats_ = FaultInjectorStats{};
}

std::string FaultInjector::DebugString() const {
  FaultInjectorStats s = stats();
  std::ostringstream os;
  os << "FaultInjector{seed=" << schedule_.seed
     << ", read_fail=" << schedule_.read_failure_rate
     << ", msg_fail=" << schedule_.message_failure_rate
     << ", drop=" << schedule_.batch_drop_rate
     << ", dup=" << schedule_.batch_duplicate_rate
     << ", delay=" << schedule_.batch_delay_rate
     << ", crashes=" << schedule_.crashes.size()
     << ", slow_windows=" << schedule_.slow_nodes.size()
     << ", gray_windows=" << schedule_.gray_failures.size()
     << ", jitter=" << schedule_.message_jitter_rate
     << "; fired: reads=" << s.failed_reads << " msgs=" << s.failed_messages
     << " drops=" << s.dropped_batches << " dups=" << s.duplicated_batches
     << " delays=" << s.delayed_batches << " crashes=" << s.crashes_fired
     << " jittered=" << s.jittered_messages << "}";
  return os.str();
}

}  // namespace wukongs
