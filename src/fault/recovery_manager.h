// RecoveryManager: orchestrates recovery after a fault (paper §5).
//
// Two flows, both at-least-once end to end:
//
//  * RecoverCluster — cold start: replay the checkpoint log's longest clean
//    prefix into a fresh cluster, then the upstream backup's unacked tail
//    (which re-supplies whatever a torn/corrupted log tail lost), then
//    re-register continuous queries from the durable registry. The cluster's
//    injection-side sequence gate turns the overlap between the two replay
//    sources into exactly-once injection.
//
//  * RestoreNode — warm repair: a crashed node rejoins a surviving cluster.
//    Its base partition is reloaded, every logged batch is replayed filtered
//    to that node, the upstream tail fills the torn gap, and the node is
//    re-admitted only once its progress covers the survivors' stable
//    frontier.
//
// At-least-once delivery means a client can observe the same window twice
// (once degraded/partial, once complete after recovery). WindowDedup is the
// client-side dedup by (query, window end) the paper prescribes: complete
// results are canonical and never replaced; a partial result is upgraded by
// a complete re-execution.

#ifndef SRC_FAULT_RECOVERY_MANAGER_H_
#define SRC_FAULT_RECOVERY_MANAGER_H_

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <utility>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/fault/upstream_buffer.h"

namespace wukongs {

struct RecoveryReport {
  size_t log_batches = 0;       // Replayed from the checkpoint log.
  size_t upstream_batches = 0;  // Replayed from the upstream backup.
  size_t queries_reregistered = 0;
  double recovery_ms = 0.0;  // Measured CPU + modeled fabric time.
};

class RecoveryManager {
 public:
  // `registry_path` empty: query re-registration is skipped (RecoverCluster).
  explicit RecoveryManager(std::string checkpoint_path,
                           std::string registry_path = {});

  // Rebuilds a fresh cluster (base data already loaded, streams already
  // defined in the same order as before the crash) from the log + upstream
  // tail. `upstream` may be null when the log is known to be complete.
  StatusOr<RecoveryReport> RecoverCluster(Cluster* cluster,
                                          const UpstreamBuffer* upstream = nullptr) const;

  // Restores crashed `node` in place on a surviving cluster. `base_triples`
  // is the original base load (the node refills only its own partition).
  StatusOr<RecoveryReport> RestoreNode(Cluster* cluster, NodeId node,
                                       std::span<const Triple> base_triples,
                                       const UpstreamBuffer* upstream = nullptr) const;

 private:
  std::string checkpoint_path_;
  std::string registry_path_;
};

// Canonical byte representation of a query result: the column list, then the
// rows serialized and sorted lexicographically. Row order is not guaranteed
// across in-place vs fork-join execution or across recovery replays, so
// byte-identity of results is defined over this digest.
std::string ResultDigest(const QueryResult& result);

// Client-side window dedup for at-least-once continuous results.
class WindowDedup {
 public:
  // Records `digest` as the result of (query, window_end). Returns true when
  // it becomes the canonical result: first sighting, or a complete result
  // upgrading a partial one. Duplicates (and partials arriving after a
  // complete result) are suppressed and counted.
  bool Accept(uint64_t query, StreamTime window_end, bool partial,
              std::string digest);

  // Canonical digest for the window, or null if never seen.
  const std::string* Find(uint64_t query, StreamTime window_end) const;
  bool IsPartial(uint64_t query, StreamTime window_end) const;

  size_t size() const { return entries_.size(); }
  size_t duplicates_suppressed() const { return duplicates_; }
  size_t upgrades() const { return upgrades_; }

 private:
  struct Entry {
    bool partial = false;
    std::string digest;
  };
  std::map<std::pair<uint64_t, StreamTime>, Entry> entries_;
  size_t duplicates_ = 0;
  size_t upgrades_ = 0;
};

}  // namespace wukongs

#endif  // SRC_FAULT_RECOVERY_MANAGER_H_
