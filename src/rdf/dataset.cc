#include "src/rdf/dataset.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace wukongs {
namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

std::vector<std::string_view> SplitWhitespace(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

// Statement parser: N-Triples plus the common Turtle abbreviations —
//   @prefix pre: <iri> .            prefix directive
//   s p o ; p2 o2 ; p3 o3 .         predicate lists
//   s p o1 , o2 , o3 .              object lists
//   s a Type                        'a' = rdf:type
// Punctuation (';' ',' '.') must be whitespace-separated or trail a term
// (terms themselves may contain '.' and ',', e.g. coordinates). A newline
// also terminates a complete statement, so plain  s p o  lines work.
class StatementParser {
 public:
  explicit StatementParser(StringServer* strings) : strings_(strings) {}

  Status FeedLine(std::string_view line, size_t line_no, TripleVec* out) {
    line_no_ = line_no;
    auto tokens = SplitWhitespace(line);
    if (tokens.empty()) {
      return MaybeEndOfStatement(out);
    }
    if (tokens[0] == "@prefix") {
      return HandlePrefix(tokens);
    }
    for (std::string_view raw : tokens) {
      // Peel one trailing punctuation mark off a term ("o2," / "o ." forms).
      std::string_view term = raw;
      char trailing = 0;
      // Peel punctuation only where it can be a separator: after the term
      // that completes a triple's object. (Terms may contain '.' and ','
      // internally, e.g. coordinates, so peeling is position-aware.)
      if (term.size() > 1 && state_ == State::kAfterPredicate &&
          (term.back() == ';' || term.back() == ',' || term.back() == '.')) {
        trailing = term.back();
        term.remove_suffix(1);
      }
      if (term == "." || term == ";" || term == ",") {
        Status s = HandlePunct(term[0], out);
        if (!s.ok()) {
          return s;
        }
        continue;
      }
      Status s = HandleTerm(term, out);
      if (!s.ok()) {
        return s;
      }
      if (trailing != 0) {
        s = HandlePunct(trailing, out);
        if (!s.ok()) {
          return s;
        }
      }
    }
    return MaybeEndOfStatement(out);
  }

  Status Finish(TripleVec* out) {
    Status s = MaybeEndOfStatement(out);
    if (!s.ok()) {
      return s;
    }
    if (state_ != State::kStart) {
      return Error("unterminated statement at end of input");
    }
    return Status::Ok();
  }

 private:
  enum class State { kStart, kAfterSubject, kAfterPredicate, kAfterObject };

  Status Error(const std::string& message) const {
    std::ostringstream os;
    os << "line " << line_no_ << ": " << message;
    return Status::InvalidArgument(os.str());
  }

  Status HandlePrefix(const std::vector<std::string_view>& tokens) {
    if (state_ != State::kStart) {
      return Error("@prefix inside a statement");
    }
    // @prefix pre: <iri> .
    if (tokens.size() < 3 || tokens[1].empty() || tokens[1].back() != ':') {
      return Error("malformed @prefix directive");
    }
    std::string_view name = tokens[1].substr(0, tokens[1].size() - 1);
    std::string_view iri = tokens[2];
    if (iri.size() >= 2 && iri.front() == '<' && iri.back() == '>') {
      iri = iri.substr(1, iri.size() - 2);
    }
    prefixes_[std::string(name)] = std::string(iri);
    return Status::Ok();
  }

  std::string Expand(std::string_view term) const {
    if (term.size() >= 2 && term.front() == '<' && term.back() == '>') {
      return std::string(term.substr(1, term.size() - 2));
    }
    size_t colon = term.find(':');
    if (colon != std::string_view::npos) {
      auto it = prefixes_.find(std::string(term.substr(0, colon)));
      if (it != prefixes_.end()) {
        return it->second + std::string(term.substr(colon + 1));
      }
    }
    return std::string(term);
  }

  Status HandleTerm(std::string_view term, TripleVec* out) {
    (void)out;
    switch (state_) {
      case State::kStart:
        subject_ = strings_->InternVertex(Expand(term));
        state_ = State::kAfterSubject;
        return Status::Ok();
      case State::kAfterSubject:
        predicate_ = strings_->InternPredicate(
            term == "a" ? std::string(kRdfType) : Expand(term));
        state_ = State::kAfterPredicate;
        return Status::Ok();
      case State::kAfterPredicate:
        object_ = strings_->InternVertex(Expand(term));
        state_ = State::kAfterObject;
        return Status::Ok();
      case State::kAfterObject:
        return Error("expected '.', ';' or ',' before next term");
    }
    return Error("unreachable");
  }

  Status HandlePunct(char p, TripleVec* out) {
    if (state_ != State::kAfterObject) {
      return Error(std::string("unexpected '") + p + "'");
    }
    out->push_back(Triple{subject_, predicate_, object_});
    switch (p) {
      case '.':
        state_ = State::kStart;
        break;
      case ';':
        state_ = State::kAfterSubject;  // Next predicate, same subject.
        break;
      case ',':
        state_ = State::kAfterPredicate;  // Next object, same predicate.
        break;
      default:
        return Error("unknown punctuation");
    }
    return Status::Ok();
  }

  // Newline after a complete triple ends the statement (N-Triples style).
  Status MaybeEndOfStatement(TripleVec* out) {
    if (state_ == State::kAfterObject) {
      out->push_back(Triple{subject_, predicate_, object_});
      state_ = State::kStart;
    }
    return Status::Ok();
  }

  StringServer* strings_;
  std::unordered_map<std::string, std::string> prefixes_;
  State state_ = State::kStart;
  VertexId subject_ = 0;
  PredicateId predicate_ = 0;
  VertexId object_ = 0;
  size_t line_no_ = 0;
};

}  // namespace

StatusOr<TripleVec> ParseTriples(std::string_view text, StringServer* strings) {
  TripleVec out;
  StatementParser parser(strings);
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    // A line whose first non-blank character is '#' is a comment. '#' inside
    // a term (e.g. the hashtag literal "#sosp17") is data, not a comment.
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string_view::npos ||
        (first != std::string_view::npos && line[first] == '#')) {
      continue;
    }
    Status s = parser.FeedLine(line, line_no, &out);
    if (!s.ok()) {
      return s;
    }
  }
  Status s = parser.Finish(&out);
  if (!s.ok()) {
    return s;
  }
  return out;
}

StatusOr<TripleVec> LoadTriplesFile(const std::string& path, StringServer* strings) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTriples(buf.str(), strings);
}

StatusOr<std::string> SerializeTriples(const TripleVec& triples,
                                       const StringServer& strings) {
  std::ostringstream os;
  for (const Triple& t : triples) {
    auto s = strings.VertexString(t.subject);
    auto p = strings.PredicateString(t.predicate);
    auto o = strings.VertexString(t.object);
    if (!s.ok() || !p.ok() || !o.ok()) {
      return Status::NotFound("triple references unknown id");
    }
    os << *s << " " << *p << " " << *o << " .\n";
  }
  return os.str();
}

}  // namespace wukongs
