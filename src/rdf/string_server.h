// String server: bidirectional mapping between RDF strings (IRIs/literals)
// and compact integer IDs (paper §3, Fig. 6 "ID-mapping").
//
// Clients intern every string before a query touches the network, so the
// engine only ever moves fixed-width IDs. Vertices and predicates live in
// separate ID spaces; vertex ID 0 is reserved for the index vertex. The
// paper notes the mapping table is never GC'd (future queries may name any
// entity), so this is an append-only structure guarded by a shared mutex.

#ifndef SRC_RDF_STRING_SERVER_H_
#define SRC_RDF_STRING_SERVER_H_

#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"

namespace wukongs {

class StringServer {
 public:
  StringServer();

  // Interns `str` as a vertex (entity/literal), returning its stable ID.
  VertexId InternVertex(std::string_view str);
  // Interns `str` as a predicate (edge label).
  PredicateId InternPredicate(std::string_view str);

  // Lookup without interning.
  std::optional<VertexId> FindVertex(std::string_view str) const;
  std::optional<PredicateId> FindPredicate(std::string_view str) const;

  // Reverse lookup; returns NotFound for unknown IDs.
  StatusOr<std::string> VertexString(VertexId id) const;
  StatusOr<std::string> PredicateString(PredicateId id) const;

  size_t vertex_count() const;
  size_t predicate_count() const;

  // Estimated resident bytes of the mapping tables (for memory accounting).
  size_t MemoryBytes() const;

  // Durability: the ID mapping must survive restarts — recovered stores and
  // checkpoint logs reference IDs, not strings (paper §5: checkpoints log
  // key/value data; the mapping table is never GC'd). Load requires a fresh
  // server (only the reserved sentinels present).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, VertexId> vertex_ids_;
  std::vector<std::string> vertex_strings_;  // index = VertexId
  std::unordered_map<std::string, PredicateId> predicate_ids_;
  std::vector<std::string> predicate_strings_;  // index = PredicateId
};

}  // namespace wukongs

#endif  // SRC_RDF_STRING_SERVER_H_
