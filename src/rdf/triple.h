// RDF triples and timestamped stream tuples (paper Fig. 1).
//
// Stored data is a set of <subject, predicate, object> triples. Streaming
// data arrives as *tuples*: a triple plus a timestamp, classified as either
// "timeless" (factual; absorbed into the persistent store, e.g. post/like) or
// "timing" (only meaningful inside a window, e.g. a GPS position; held in the
// time-based transient store and swept by GC).

#ifndef SRC_RDF_TRIPLE_H_
#define SRC_RDF_TRIPLE_H_

#include <cstdint>
#include <vector>

#include "src/common/ids.h"

namespace wukongs {

struct Triple {
  VertexId subject = 0;
  PredicateId predicate = 0;
  VertexId object = 0;

  friend bool operator==(const Triple&, const Triple&) = default;
};

// Milliseconds on the stream's logical time axis. C-SPARQL's time model
// guarantees monotonically non-decreasing timestamps within a stream (§4.3),
// so the engine never reorders.
using StreamTime = uint64_t;

enum class TupleKind : uint8_t {
  kTimeless = 0,  // Absorbed into the continuous persistent store.
  kTiming = 1,    // Held in the time-based transient store only.
};

struct StreamTuple {
  Triple triple;
  StreamTime timestamp = 0;
  TupleKind kind = TupleKind::kTimeless;

  friend bool operator==(const StreamTuple&, const StreamTuple&) = default;
};

using TripleVec = std::vector<Triple>;
using StreamTupleVec = std::vector<StreamTuple>;

}  // namespace wukongs

#endif  // SRC_RDF_TRIPLE_H_
