#include "src/rdf/string_server.h"

#include <cassert>
#include <cstdio>
#include <mutex>

namespace wukongs {

StringServer::StringServer() {
  // Reserve vertex 0 (index vertex) and predicate 0 so real IDs start at 1
  // and the index-vertex key [0|pid|dir] can never collide with an entity.
  vertex_strings_.push_back("<INDEX>");
  vertex_ids_.emplace("<INDEX>", kIndexVertex);
  predicate_strings_.push_back("<PRED0>");
  predicate_ids_.emplace("<PRED0>", 0);
}

VertexId StringServer::InternVertex(std::string_view str) {
  {
    std::shared_lock lock(mu_);
    auto it = vertex_ids_.find(std::string(str));
    if (it != vertex_ids_.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] = vertex_ids_.emplace(std::string(str), vertex_strings_.size());
  if (inserted) {
    assert(vertex_strings_.size() <= kMaxVertexId);
    vertex_strings_.push_back(std::string(str));
  }
  return it->second;
}

PredicateId StringServer::InternPredicate(std::string_view str) {
  {
    std::shared_lock lock(mu_);
    auto it = predicate_ids_.find(std::string(str));
    if (it != predicate_ids_.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(mu_);
  auto [it, inserted] =
      predicate_ids_.emplace(std::string(str), predicate_strings_.size());
  if (inserted) {
    assert(predicate_strings_.size() <= kMaxPredicateId);
    predicate_strings_.push_back(std::string(str));
  }
  return it->second;
}

std::optional<VertexId> StringServer::FindVertex(std::string_view str) const {
  std::shared_lock lock(mu_);
  auto it = vertex_ids_.find(std::string(str));
  if (it == vertex_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<PredicateId> StringServer::FindPredicate(std::string_view str) const {
  std::shared_lock lock(mu_);
  auto it = predicate_ids_.find(std::string(str));
  if (it == predicate_ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

StatusOr<std::string> StringServer::VertexString(VertexId id) const {
  std::shared_lock lock(mu_);
  if (id >= vertex_strings_.size()) {
    return Status::NotFound("unknown vertex id");
  }
  return vertex_strings_[id];
}

StatusOr<std::string> StringServer::PredicateString(PredicateId id) const {
  std::shared_lock lock(mu_);
  if (id >= predicate_strings_.size()) {
    return Status::NotFound("unknown predicate id");
  }
  return predicate_strings_[id];
}

size_t StringServer::vertex_count() const {
  std::shared_lock lock(mu_);
  return vertex_strings_.size();
}

size_t StringServer::predicate_count() const {
  std::shared_lock lock(mu_);
  return predicate_strings_.size();
}

namespace {

constexpr uint32_t kStringsMagic = 0x574b5354;  // "WKST"

bool WriteString(std::FILE* f, const std::string& s) {
  uint64_t len = s.size();
  return std::fwrite(&len, 8, 1, f) == 1 &&
         std::fwrite(s.data(), 1, s.size(), f) == s.size();
}

bool ReadString(std::FILE* f, std::string* out) {
  uint64_t len = 0;
  if (std::fread(&len, 8, 1, f) != 1) {
    return false;
  }
  out->resize(len);
  return std::fread(out->data(), 1, len, f) == len;
}

}  // namespace

Status StringServer::Save(const std::string& path) const {
  std::shared_lock lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  uint64_t nv = vertex_strings_.size();
  uint64_t np = predicate_strings_.size();
  bool ok = std::fwrite(&kStringsMagic, 4, 1, f) == 1 &&
            std::fwrite(&nv, 8, 1, f) == 1 && std::fwrite(&np, 8, 1, f) == 1;
  for (uint64_t i = 1; ok && i < nv; ++i) {  // Skip the reserved sentinel.
    ok = WriteString(f, vertex_strings_[i]);
  }
  for (uint64_t i = 1; ok && i < np; ++i) {
    ok = WriteString(f, predicate_strings_[i]);
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::Internal("short write to " + path);
}

Status StringServer::Load(const std::string& path) {
  std::unique_lock lock(mu_);
  if (vertex_strings_.size() != 1 || predicate_strings_.size() != 1) {
    return Status::FailedPrecondition("Load requires a fresh string server");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  uint32_t magic = 0;
  uint64_t nv = 0;
  uint64_t np = 0;
  if (std::fread(&magic, 4, 1, f) != 1 || magic != kStringsMagic ||
      std::fread(&nv, 8, 1, f) != 1 || std::fread(&np, 8, 1, f) != 1) {
    std::fclose(f);
    return Status::InvalidArgument("bad string table header in " + path);
  }
  for (uint64_t i = 1; i < nv; ++i) {
    std::string s;
    if (!ReadString(f, &s)) {
      std::fclose(f);
      return Status::InvalidArgument("truncated string table in " + path);
    }
    vertex_ids_.emplace(s, vertex_strings_.size());
    vertex_strings_.push_back(std::move(s));
  }
  for (uint64_t i = 1; i < np; ++i) {
    std::string s;
    if (!ReadString(f, &s)) {
      std::fclose(f);
      return Status::InvalidArgument("truncated predicate table in " + path);
    }
    predicate_ids_.emplace(s, predicate_strings_.size());
    predicate_strings_.push_back(std::move(s));
  }
  std::fclose(f);
  return Status::Ok();
}

size_t StringServer::MemoryBytes() const {
  std::shared_lock lock(mu_);
  size_t bytes = 0;
  for (const auto& s : vertex_strings_) {
    bytes += s.size() + sizeof(std::string) + sizeof(VertexId) + 32;
  }
  for (const auto& s : predicate_strings_) {
    bytes += s.size() + sizeof(std::string) + sizeof(PredicateId) + 32;
  }
  return bytes;
}

}  // namespace wukongs
