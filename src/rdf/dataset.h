// Dataset loading: a minimal N-Triples-style text format plus programmatic
// construction. Used by examples and tests; the benchmark generators build
// triples directly.
//
// Line format (whitespace separated, '#' comments, trailing '.' optional):
//   <subject> <predicate> <object> .

#ifndef SRC_RDF_DATASET_H_
#define SRC_RDF_DATASET_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/rdf/string_server.h"
#include "src/rdf/triple.h"

namespace wukongs {

// Parses N-Triples-ish text into ID triples, interning strings on the fly.
StatusOr<TripleVec> ParseTriples(std::string_view text, StringServer* strings);

// Reads a file and parses it with ParseTriples.
StatusOr<TripleVec> LoadTriplesFile(const std::string& path, StringServer* strings);

// Serializes triples back to text (one per line) using the string server.
StatusOr<std::string> SerializeTriples(const TripleVec& triples,
                                       const StringServer& strings);

}  // namespace wukongs

#endif  // SRC_RDF_DATASET_H_
