// Continuous persistent store (paper §4.1, Fig. 6).
//
// One GStore instance is one node's shard of the distributed RDF graph:
// a key/value map from packed [vid|pid|dir] keys to append-only neighbor
// lists. Two kinds of keys exist:
//   * normal keys  [v|p|d]  — neighbors of vertex v over predicate p;
//   * index keys   [0|p|d]  — every vertex that has a p-edge in direction d
//     (the "index vertex" that seeds queries with no constant start point).
//
// Values are append-only and carry *bounded snapshot markers* (§4.3): each
// key keeps a short deque of (SN, end-offset) pairs recording where the data
// of each scalar snapshot ends. A reader at Stable_SN = s sees the prefix up
// to the last marker with sn <= s; the initial bulk load is the base prefix
// visible at every SN. Markers below the published collapse floor fold into
// the base lazily on next touch, so per-key snapshot metadata stays bounded
// (the "one for using, one for inserting" property from the paper).
//
// Concurrency: the map is striped into fixed partitions. The paper's Injector
// threads statically partition the key space to avoid locks; readers (queries)
// run concurrently with injection, so each stripe uses a shared_mutex and
// readers copy spans out. Stripes also give the static injector partitioning.

#ifndef SRC_STORE_GSTORE_H_
#define SRC_STORE_GSTORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/rdf/triple.h"

namespace wukongs {

// Where a streaming append landed inside a persistent value; consumed by the
// stream index so windows can address exactly the data of one batch (§4.2).
struct AppendSpan {
  Key key;
  uint32_t start = 0;
  uint32_t count = 0;
};

class GStore {
 public:
  // Data appended at SN <= kBaseSnapshot belongs to the base prefix.
  static constexpr SnapshotNum kBaseSnapshot = 0;

  explicit GStore(NodeId node);

  NodeId node() const { return node_; }

  // --- Bulk load (initial stored data; becomes the base prefix). ---
  // Inserts the out-direction key for the subject, the in-direction key for
  // the object, and index entries for newly created keys.
  void LoadTriple(const Triple& t);
  void LoadTriples(std::span<const Triple> triples);
  // Distributed bulk load: write one direction into this shard only.
  void LoadEdge(Key key, VertexId value) { AppendEdge(key, value, kBaseSnapshot); }

  // --- Streaming injection (timeless data; paper Fig. 6 walk-through). ---
  // Appends under snapshot `sn` and reports the spans it created so the
  // caller can build stream-index entries. Appends for a given key must be
  // issued with non-decreasing sn (streams are in-order, §4.3).
  // InjectTriple writes both directions into this shard (single-node use);
  // the distributed dispatcher instead routes each direction to its owner
  // shard via InjectEdge. Spans include index-vertex appends so stream
  // windows can also seed from index keys.
  void InjectTriple(const Triple& t, SnapshotNum sn, std::vector<AppendSpan>* spans);
  void InjectEdge(Key key, VertexId value, SnapshotNum sn,
                  std::vector<AppendSpan>* spans);

  // --- Migration appends (online reconfiguration, DESIGN.md §5.10). ---
  // Copies one edge of a moving shard into this (target) store. Differences
  // from InjectEdge: counted separately (EdgeCountTotal — and therefore the
  // delta-cache StoredEpoch guard — is unchanged by migration, since the data
  // is a bit-equal copy of what the source already serves), not counted as a
  // stream append, and out-of-order SNs are tolerated — history replayed
  // *after* dual-applied live batches folds into the newest marker (deferred
  // visibility; the cutover barrier guarantees everything folded is visible
  // at or below the commit-time Stable_SN).
  void InjectEdgeMigrated(Key key, VertexId value, SnapshotNum sn,
                          std::vector<AppendSpan>* spans);

  // Removes every edge of vertices matched by `in_shard` — the stale copy a
  // former owner kept after a shard moved away (reclamation is deferred at
  // cutover), or the partial copy stranded by an aborted transfer. Called on
  // a migration target before the fresh base copy lands, so copy + replay +
  // dual-apply rebuild the shard exactly once. Normal keys of matched
  // vertices are dropped whole; index keys are compacted in place with their
  // snapshot markers remapped to the surviving offsets. Returns edges
  // removed. EdgeCountTotal is left untouched (like migrated-in edges, the
  // purged copy is invisible to owner-routed reads either way).
  size_t PurgeShard(const std::function<bool(VertexId)>& in_shard);

  // --- Reads. ---
  // Neighbors of `key` visible at snapshot `sn` (>= everything at sn
  // kSnapshotInfinity). Returns a copy; safe against concurrent injection.
  static constexpr SnapshotNum kSnapshotInfinity = ~SnapshotNum{0};
  std::vector<VertexId> GetEdges(Key key, SnapshotNum sn) const;
  void GetEdgesInto(Key key, SnapshotNum sn, std::vector<VertexId>* out) const;

  // Reads `count` neighbors starting at `start` (a stream-index span). The
  // span may exceed the visible prefix only if the caller's SN is behind the
  // injector; reads clamp to the stored size.
  void GetSpanInto(Key key, uint32_t start, uint32_t count,
                   std::vector<VertexId>* out) const;

  // True if edge (key -> value) exists at snapshot sn.
  bool HasEdge(Key key, VertexId value, SnapshotNum sn) const;

  // Number of neighbors visible at sn (0 if key absent). Used by the planner
  // for selectivity estimates and by in-place execution to size RDMA reads.
  size_t EdgeCount(Key key, SnapshotNum sn) const;

  // --- Snapshot maintenance (§4.3). ---
  // Publishes a collapse floor: markers with sn <= floor fold into the base
  // prefix lazily on next access. Called by the Coordinator once a snapshot
  // can no longer be named by any query.
  void CollapseBelow(SnapshotNum floor);

  // --- Accounting. ---
  size_t KeyCount() const;
  size_t EdgeCountTotal() const;
  size_t StreamAppendedEdges() const {
    return stream_appended_edges_.load(std::memory_order_relaxed);
  }
  // Edges copied in by shard migration (base copy, history replay, and
  // dual-apply); excluded from EdgeCountTotal.
  size_t MigratedInEdges() const {
    return migrated_in_.load(std::memory_order_relaxed);
  }
  // Approximate resident bytes of the shard (values + marker metadata).
  size_t MemoryBytes() const;
  // Bytes of snapshot-marker metadata alone; Table 7 compares this against
  // the hypothetical per-edge vector-timestamp representation.
  size_t SnapshotMetadataBytes() const;

 private:
  struct SnapMarker {
    SnapshotNum sn;
    uint32_t end;  // Edges [0, end) are visible at snapshots >= sn.
  };

  struct EdgeValue {
    std::vector<VertexId> edges;
    uint32_t base_end = 0;            // Visible at every snapshot.
    std::vector<SnapMarker> markers;  // Ascending sn; small and bounded.

    uint32_t VisibleEnd(SnapshotNum sn) const;
    void Collapse(SnapshotNum floor);
  };

  static constexpr size_t kStripeCount = 64;

  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, EdgeValue, KeyHash> map;
  };

  Stripe& StripeFor(Key key) {
    return stripes_[KeyHash{}(key) % kStripeCount];
  }
  const Stripe& StripeFor(Key key) const {
    return stripes_[KeyHash{}(key) % kStripeCount];
  }

  // Appends `value` to `key` under `sn`; returns the span written. When the
  // key is newly created and is a normal key, also appends the vertex to the
  // matching index key (paper Fig. 6 step 4), reporting that span via
  // `extra_spans` when non-null.
  AppendSpan AppendEdge(Key key, VertexId value, SnapshotNum sn,
                        std::vector<AppendSpan>* extra_spans = nullptr);
  AppendSpan AppendEdgeImpl(Key key, VertexId value, SnapshotNum sn,
                            std::vector<AppendSpan>* extra_spans, bool migrated);

  const NodeId node_;
  std::array<Stripe, kStripeCount> stripes_;
  std::atomic<SnapshotNum> collapse_floor_{0};
  std::atomic<uint64_t> edge_total_{0};
  std::atomic<uint64_t> stream_appended_edges_{0};
  std::atomic<uint64_t> migrated_in_{0};
};

}  // namespace wukongs

#endif  // SRC_STORE_GSTORE_H_
