#include "src/store/stream_stats.h"

#include <algorithm>

namespace wukongs {
namespace {

// EWMA weight for fan-out observations: heavy enough that a genuine shift
// shows within a few triggers, light enough that one skewed window does not
// whipsaw the estimate.
constexpr double kFanoutAlpha = 0.3;

}  // namespace

double StreamStatsSnapshot::FanoutOf(int32_t scope, PredicateId pred) const {
  auto it = fanouts.find(FanoutKey(scope, pred));
  return it == fanouts.end() ? -1.0 : it->second;
}

double RateDriftFactor(const StreamStatsSnapshot& then_,
                       const StreamStatsSnapshot& now,
                       const std::vector<StreamId>& streams,
                       double rate_floor) {
  const double floor = std::max(rate_floor, 1e-9);
  double worst = 1.0;
  auto ratio = [&](StreamId s) {
    const double a = std::max(then_.RateOf(s), floor);
    const double b = std::max(now.RateOf(s), floor);
    return std::max(a / b, b / a);
  };
  if (!streams.empty()) {
    for (StreamId s : streams) {
      worst = std::max(worst, ratio(s));
    }
    return worst;
  }
  const size_t n = std::max(then_.rates.size(), now.rates.size());
  for (size_t s = 0; s < n; ++s) {
    worst = std::max(worst, ratio(static_cast<StreamId>(s)));
  }
  return worst;
}

bool DriftExceeds(const StreamStatsSnapshot& plan_stats,
                  const StreamStatsSnapshot& now,
                  const std::vector<StreamId>& streams,
                  const ReplanPolicy& policy) {
  return RateDriftFactor(plan_stats, now, streams, policy.rate_floor) >=
         policy.drift_factor;
}

StreamStatsCollector::StreamStatsCollector(StreamTime rate_window_ms)
    : window_ms_(rate_window_ms == 0 ? 1 : rate_window_ms) {}

void StreamStatsCollector::ObserveBatch(StreamId stream,
                                        StreamTime batch_end_ms,
                                        size_t tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream >= streams_.size()) {
    streams_.resize(static_cast<size_t>(stream) + 1);
  }
  PerStream& ps = streams_[stream];
  ps.batches.emplace_back(batch_end_ms, static_cast<uint64_t>(tuples));
  ps.tuples_in_window += tuples;
  ps.last_end_ms = std::max(ps.last_end_ms, batch_end_ms);
  // Trailing window is (last - window_ms, last]: evict batches that aged out.
  const StreamTime cutoff =
      ps.last_end_ms > window_ms_ ? ps.last_end_ms - window_ms_ : 0;
  while (!ps.batches.empty() && ps.batches.front().first <= cutoff) {
    ps.tuples_in_window -= ps.batches.front().second;
    ps.batches.pop_front();
  }
}

void StreamStatsCollector::ObserveExpansion(int32_t scope, PredicateId pred,
                                            size_t rows_in, size_t rows_out) {
  const double x = static_cast<double>(rows_out) /
                   static_cast<double>(std::max<size_t>(rows_in, 1));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] =
      fanouts_.try_emplace(StreamStatsSnapshot::FanoutKey(scope, pred), x);
  if (!fresh) {
    it->second = (1.0 - kFanoutAlpha) * it->second + kFanoutAlpha * x;
  }
}

StreamStatsSnapshot StreamStatsCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StreamStatsSnapshot snap;
  snap.rates.reserve(streams_.size());
  for (const PerStream& ps : streams_) {
    snap.rates.push_back(static_cast<double>(ps.tuples_in_window) * 1000.0 /
                         static_cast<double>(window_ms_));
    snap.as_of_ms = std::max(snap.as_of_ms, ps.last_end_ms);
  }
  snap.fanouts = fanouts_;
  return snap;
}

}  // namespace wukongs
