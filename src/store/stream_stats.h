// Live stream statistics feeding the adaptive planner (§5.14).
//
// The planner orders patterns from NeighborSource cardinality estimates that
// are frozen into a registration's plan at its first trigger. When stream
// rates shift mid-run that plan cliffs (Strider, PAPERS.md). This module
// collects the two live signals re-planning needs:
//
//  * per-stream ingest rates over a trailing window of *logical* stream time
//    (fed from Cluster::InjectBatch, so the numbers are deterministic under
//    the differential harness's simulated clock), and
//  * observed per-pattern join fan-outs — mean output rows per input row of
//    bound-variable expansion, keyed by (scope, predicate) where scope is
//    the stream feeding a window pattern or kStoredScope — fed from the
//    executor's per-step observer.
//
// Snapshots are immutable value types: a plan records the snapshot it was
// derived from, and the drift detector compares that against a fresh one.
// Everything here is pure bookkeeping so the fire-iff-drift property lane
// (tests/planner_stats_test.cc) can drive it without a cluster.

#ifndef SRC_STORE_STREAM_STATS_H_
#define SRC_STORE_STREAM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/rdf/triple.h"

namespace wukongs {

// Scope for observed fan-outs: window patterns are attributed to the stream
// feeding them, stored-graph patterns to kStoredScope.
inline constexpr int32_t kStoredScope = -1;

// Immutable view of the collector state a plan was derived from.
struct StreamStatsSnapshot {
  // rates[s] = tuples/sec for stream s over the trailing rate window,
  // measured in logical stream time. Streams never observed read 0.
  std::vector<double> rates;
  // Observed mean expansion fan-out keyed by FanoutKey(scope, predicate).
  std::unordered_map<uint64_t, double> fanouts;
  StreamTime as_of_ms = 0;

  double RateOf(StreamId s) const {
    return s < rates.size() ? rates[s] : 0.0;
  }
  // Returns a negative value when the pair was never observed.
  double FanoutOf(int32_t scope, PredicateId pred) const;
  static uint64_t FanoutKey(int32_t scope, PredicateId pred) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(scope)) << 32) |
           static_cast<uint64_t>(pred);
  }
};

// Cluster-level knobs for the adaptive re-planner. Lives here (not in
// cluster.h) so the trigger predicate below is testable without a cluster.
struct ReplanPolicy {
  // Off by default: the plan-once stored-procedure lifecycle stays
  // byte-identical unless a deployment opts in.
  bool enabled = false;
  // Re-plan fires when the max per-stream rate ratio between the plan's
  // snapshot and a fresh one reaches this factor.
  double drift_factor = 2.0;
  // Rates below this floor (tuples/sec) are clamped up before the ratio so
  // silence vs. trickle does not read as infinite drift.
  double rate_floor = 0.5;
  // Cooldown: triggers of one registration between consecutive drift checks.
  uint64_t min_triggers_between = 4;
  // Abort the shadow parity check once the two shadow executions have
  // produced this many intermediate rows (0 = unlimited). Row counts, not
  // wall time, so budget-overrun fallbacks replay deterministically.
  uint64_t shadow_budget_rows = 0;
  // Trailing window (logical ms) the collector computes ingest rates over.
  StreamTime rate_window_ms = 1000;
};

// Largest symmetric per-stream rate ratio between two snapshots, over
// `streams` (empty = every stream either snapshot knows). Returns 1.0 when
// nothing drifted.
double RateDriftFactor(const StreamStatsSnapshot& then_,
                       const StreamStatsSnapshot& now,
                       const std::vector<StreamId>& streams,
                       double rate_floor);

// The re-plan trigger predicate: drift between the plan's snapshot and a
// fresh one reached policy.drift_factor. This exact predicate (and nothing
// else) decides firing, so the property lane can assert fire-iff-drift.
bool DriftExceeds(const StreamStatsSnapshot& plan_stats,
                  const StreamStatsSnapshot& now,
                  const std::vector<StreamId>& streams,
                  const ReplanPolicy& policy);

class StreamStatsCollector {
 public:
  explicit StreamStatsCollector(StreamTime rate_window_ms = 1000);

  // One injected batch for `stream` whose window ends at `batch_end_ms`.
  // Empty batches still advance the stream's trailing window.
  void ObserveBatch(StreamId stream, StreamTime batch_end_ms, size_t tuples);

  // One bound-variable expansion step: `rows_in` input rows produced
  // `rows_out` output rows. Folded into a per-(scope, predicate) EWMA.
  void ObserveExpansion(int32_t scope, PredicateId pred, size_t rows_in,
                        size_t rows_out);

  StreamStatsSnapshot Snapshot() const;
  StreamTime rate_window_ms() const { return window_ms_; }

 private:
  struct PerStream {
    std::deque<std::pair<StreamTime, uint64_t>> batches;  // (end_ms, tuples)
    uint64_t tuples_in_window = 0;
    StreamTime last_end_ms = 0;
  };

  mutable std::mutex mu_;
  const StreamTime window_ms_;
  std::vector<PerStream> streams_;
  std::unordered_map<uint64_t, double> fanouts_;
};

}  // namespace wukongs

#endif  // SRC_STORE_STREAM_STATS_H_
