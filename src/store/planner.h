// Query planner: orders triple patterns for graph exploration.
//
// Wukong-style exploration is order-sensitive: starting from a constant
// vertex or an already-bound variable keeps intermediate tables small, while
// starting from an index vertex scans every vertex with that predicate. The
// integrated design can plan across stream and stored patterns *globally* —
// the paper's Issue#2 shows composite designs lose exactly this ability.
//
// The planner is greedy: at each step it picks the cheapest pattern that is
// connected to the current bindings (or, failing that, the cheapest seed),
// using NeighborSource cardinality estimates.

#ifndef SRC_STORE_PLANNER_H_
#define SRC_STORE_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/engine/executor.h"
#include "src/sparql/ast.h"
#include "src/store/stream_stats.h"

namespace wukongs {

// Planner steering knobs supplied by the engine that owns the query.
struct PlanHints {
  // A DeltaCache is attached to this continuous query (§5.9): bias the plan
  // toward cache-friendly shapes — stored-graph prefix first, window-scoped
  // patterns last — so the cached prefix table and per-slice contributions
  // stay reusable across triggers.
  bool delta_cache = false;
  // Rows per columnar chunk (§5.13). Bound-variable expansion is batched per
  // chunk, so its cost scales with how many chunk-granular gather passes the
  // seed set fills, not with the raw seed count the row executor paid per
  // row. 0 selects the legacy row-count estimate (used by the composite
  // baselines, which keep the row pipeline). Whatever the chunk size, the
  // chunked estimate can never exceed the row estimate for the same seed
  // population; EstimatePatternCost reconciles the two (asserting in debug
  // builds) so they cannot disagree silently.
  size_t chunk_rows = kColumnarChunkRows;
  // Live statistics (§5.14): when set, an observed fan-out for a pattern's
  // (scope, predicate) overrides the seed-count heuristic for bound-variable
  // expansion. Null = static estimates only (the default everywhere except
  // adaptive re-planning, keeping legacy plans byte-identical).
  const StreamStatsSnapshot* stats = nullptr;
  // Maps a window graph index (Query::windows position) to the stream
  // feeding it, for keying observed fan-outs. Stored-graph patterns use
  // kStoredScope; window graphs beyond this vector fall back to the static
  // estimate.
  std::vector<int32_t> window_scope;
};

// Returns the execution order (indices into q.patterns).
std::vector<int> PlanQuery(const Query& q, const ExecContext& ctx);
std::vector<int> PlanQuery(const Query& q, const ExecContext& ctx,
                           const PlanHints& hints);

// Estimated output cardinality of running `p` given `bound` variable slots.
// Exposed for tests and for the composite baselines (which must plan with
// *partial* information to reproduce the paper's sub-optimal plans). The
// three-argument form estimates for the primary (columnar) executor.
double EstimatePatternCost(const TriplePattern& p, const std::vector<bool>& bound,
                           const ExecContext& ctx);
double EstimatePatternCost(const TriplePattern& p, const std::vector<bool>& bound,
                           const ExecContext& ctx, const PlanHints& hints);

}  // namespace wukongs

#endif  // SRC_STORE_PLANNER_H_
