#include "src/store/gstore.h"

#include <algorithm>
#include <cassert>

namespace wukongs {

GStore::GStore(NodeId node) : node_(node) {}

uint32_t GStore::EdgeValue::VisibleEnd(SnapshotNum sn) const {
  uint32_t end = base_end;
  for (const SnapMarker& m : markers) {
    if (m.sn <= sn) {
      end = m.end;
    } else {
      break;
    }
  }
  return end;
}

void GStore::EdgeValue::Collapse(SnapshotNum floor) {
  size_t fold = 0;
  while (fold < markers.size() && markers[fold].sn <= floor) {
    base_end = markers[fold].end;
    ++fold;
  }
  if (fold > 0) {
    markers.erase(markers.begin(), markers.begin() + static_cast<long>(fold));
  }
}

void GStore::LoadTriple(const Triple& t) {
  AppendEdge(Key(t.subject, t.predicate, Dir::kOut), t.object, kBaseSnapshot);
  AppendEdge(Key(t.object, t.predicate, Dir::kIn), t.subject, kBaseSnapshot);
}

void GStore::LoadTriples(std::span<const Triple> triples) {
  for (const Triple& t : triples) {
    LoadTriple(t);
  }
}

void GStore::InjectTriple(const Triple& t, SnapshotNum sn,
                          std::vector<AppendSpan>* spans) {
  InjectEdge(Key(t.subject, t.predicate, Dir::kOut), t.object, sn, spans);
  InjectEdge(Key(t.object, t.predicate, Dir::kIn), t.subject, sn, spans);
}

void GStore::InjectEdge(Key key, VertexId value, SnapshotNum sn,
                        std::vector<AppendSpan>* spans) {
  AppendSpan s = AppendEdge(key, value, sn, spans);
  stream_appended_edges_.fetch_add(1, std::memory_order_relaxed);
  if (spans != nullptr) {
    spans->push_back(s);
  }
}

AppendSpan GStore::AppendEdge(Key key, VertexId value, SnapshotNum sn,
                              std::vector<AppendSpan>* extra_spans) {
  return AppendEdgeImpl(key, value, sn, extra_spans, /*migrated=*/false);
}

void GStore::InjectEdgeMigrated(Key key, VertexId value, SnapshotNum sn,
                                std::vector<AppendSpan>* spans) {
  AppendSpan s = AppendEdgeImpl(key, value, sn, spans, /*migrated=*/true);
  if (spans != nullptr) {
    spans->push_back(s);
  }
}

AppendSpan GStore::AppendEdgeImpl(Key key, VertexId value, SnapshotNum sn,
                                  std::vector<AppendSpan>* extra_spans,
                                  bool migrated) {
  bool created = false;
  AppendSpan span;
  {
    Stripe& stripe = StripeFor(key);
    std::unique_lock lock(stripe.mu);
    auto [it, inserted] = stripe.map.try_emplace(key);
    created = inserted;
    EdgeValue& v = it->second;
    v.Collapse(collapse_floor_.load(std::memory_order_relaxed));
    span.key = key;
    span.start = static_cast<uint32_t>(v.edges.size());
    span.count = 1;
    v.edges.push_back(value);
    uint32_t end = static_cast<uint32_t>(v.edges.size());
    if (sn <= kBaseSnapshot) {
      if (migrated && !v.markers.empty()) {
        // Migration base copy landing after dual-applied live batches (the
        // key already carries markers on the target): fold into the newest
        // snapshot rather than rewriting the base prefix under it. Deferred
        // visibility; safe because the cutover barrier holds the epoch bump
        // until Stable_SN covers every marker created during the transfer.
        v.markers.back().end = end;
      } else {
        // Bulk load: base prefix, no marker needed. Markers, if any, keep
        // their offsets valid because bulk load never interleaves with
        // injection on the same key.
        assert(v.markers.empty());
        v.base_end = end;
      }
    } else if (!v.markers.empty() && v.markers.back().sn >= sn) {
      // Same snapshot: extend its interval. A *smaller* snapshot here means
      // two streams skewed past each other on a shared key (one ran ahead of
      // the announced plan); the value cannot stay SN-consecutive, so the
      // late append folds into the newest snapshot — deferred visibility,
      // never an unordered marker list. The Cluster minimizes skew by
      // injecting cross-stream batches in sequence order.
      v.markers.back().end = end;
    } else {
      v.markers.push_back(SnapMarker{sn, end});
    }
  }
  if (migrated) {
    migrated_in_.fetch_add(1, std::memory_order_relaxed);
  } else {
    edge_total_.fetch_add(1, std::memory_order_relaxed);
  }

  // Maintain the index vertex: a normal key created for the first time means
  // vertex `key.vid()` now has a (pid, dir) edge, so it joins the index list.
  if (created && !key.is_index()) {
    AppendSpan idx = AppendEdgeImpl(Key(kIndexVertex, key.pid(), key.dir()),
                                    key.vid(), sn, nullptr, migrated);
    if (extra_spans != nullptr) {
      extra_spans->push_back(idx);
    }
  }
  return span;
}

std::vector<VertexId> GStore::GetEdges(Key key, SnapshotNum sn) const {
  std::vector<VertexId> out;
  GetEdgesInto(key, sn, &out);
  return out;
}

void GStore::GetEdgesInto(Key key, SnapshotNum sn, std::vector<VertexId>* out) const {
  out->clear();
  const Stripe& stripe = StripeFor(key);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return;
  }
  uint32_t end = it->second.VisibleEnd(sn);
  out->assign(it->second.edges.begin(), it->second.edges.begin() + end);
}

void GStore::GetSpanInto(Key key, uint32_t start, uint32_t count,
                         std::vector<VertexId>* out) const {
  const Stripe& stripe = StripeFor(key);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return;
  }
  const auto& edges = it->second.edges;
  uint32_t size = static_cast<uint32_t>(edges.size());
  uint32_t lo = std::min(start, size);
  uint32_t hi = std::min(start + count, size);
  out->insert(out->end(), edges.begin() + lo, edges.begin() + hi);
}

bool GStore::HasEdge(Key key, VertexId value, SnapshotNum sn) const {
  const Stripe& stripe = StripeFor(key);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return false;
  }
  uint32_t end = it->second.VisibleEnd(sn);
  const auto& edges = it->second.edges;
  return std::find(edges.begin(), edges.begin() + end, value) !=
         edges.begin() + end;
}

size_t GStore::EdgeCount(Key key, SnapshotNum sn) const {
  const Stripe& stripe = StripeFor(key);
  std::shared_lock lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return 0;
  }
  return it->second.VisibleEnd(sn);
}

void GStore::CollapseBelow(SnapshotNum floor) {
  SnapshotNum prev = collapse_floor_.load(std::memory_order_relaxed);
  if (prev >= floor) {
    return;
  }
  while (prev < floor && !collapse_floor_.compare_exchange_weak(
                             prev, floor, std::memory_order_relaxed)) {
  }
  // Fold eagerly so reclaimed marker metadata and the new base prefix are
  // visible immediately; AppendEdge also folds lazily for keys touched later.
  for (Stripe& stripe : stripes_) {
    std::unique_lock lock(stripe.mu);
    for (auto& [key, value] : stripe.map) {
      value.Collapse(floor);
    }
  }
}

size_t GStore::PurgeShard(const std::function<bool(VertexId)>& in_shard) {
  size_t removed_edges = 0;
  for (Stripe& stripe : stripes_) {
    std::unique_lock lock(stripe.mu);
    for (auto it = stripe.map.begin(); it != stripe.map.end();) {
      EdgeValue& v = it->second;
      if (!it->first.is_index()) {
        if (in_shard(it->first.vid())) {
          removed_edges += v.edges.size();
          it = stripe.map.erase(it);
        } else {
          ++it;
        }
        continue;
      }
      // Index key: vertices of many shards share the list, so compact the
      // matched ones out and remap every visibility offset (base_end and the
      // snapshot markers) past the removed slots. Offsets recorded elsewhere
      // (stream-index spans on index keys) are never read by window lookups —
      // those go through the materialized seed lists, purged separately.
      const uint32_t n = static_cast<uint32_t>(v.edges.size());
      std::vector<uint32_t> removed_before(n + 1, 0);
      uint32_t write = 0;
      for (uint32_t i = 0; i < n; ++i) {
        const bool match = in_shard(v.edges[i]);
        removed_before[i + 1] = removed_before[i] + (match ? 1u : 0u);
        if (!match) {
          v.edges[write++] = v.edges[i];
        }
      }
      if (removed_before[n] != 0) {
        removed_edges += removed_before[n];
        v.edges.resize(write);
        v.base_end -= removed_before[v.base_end];
        for (SnapMarker& m : v.markers) {
          m.end -= removed_before[m.end];
        }
      }
      ++it;
    }
  }
  return removed_edges;
}

size_t GStore::KeyCount() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::shared_lock lock(s.mu);
    n += s.map.size();
  }
  return n;
}

size_t GStore::EdgeCountTotal() const {
  return edge_total_.load(std::memory_order_relaxed);
}

size_t GStore::MemoryBytes() const {
  size_t bytes = 0;
  for (const Stripe& s : stripes_) {
    std::shared_lock lock(s.mu);
    for (const auto& [key, value] : s.map) {
      bytes += sizeof(Key) + sizeof(EdgeValue) + 32;  // Map node overhead.
      bytes += value.edges.capacity() * sizeof(VertexId);
      bytes += value.markers.capacity() * sizeof(SnapMarker);
    }
  }
  return bytes;
}

size_t GStore::SnapshotMetadataBytes() const {
  size_t bytes = 0;
  for (const Stripe& s : stripes_) {
    std::shared_lock lock(s.mu);
    for (const auto& [key, value] : s.map) {
      bytes += value.markers.size() * sizeof(SnapMarker);
    }
  }
  return bytes;
}

}  // namespace wukongs
