#include "src/store/planner.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace wukongs {
namespace {

const NeighborSource* SourceFor(const ExecContext& ctx, int graph) {
  size_t idx = graph == kGraphStored ? 0 : static_cast<size_t>(graph) + 1;
  assert(idx < ctx.sources.size());
  return ctx.sources[idx];
}

bool TermBound(const Term& t, const std::vector<bool>& bound) {
  return !t.is_var() || bound[static_cast<size_t>(t.var)];
}

}  // namespace

double EstimatePatternCost(const TriplePattern& p, const std::vector<bool>& bound,
                           const ExecContext& ctx) {
  return EstimatePatternCost(p, bound, ctx, PlanHints{});
}

double EstimatePatternCost(const TriplePattern& p, const std::vector<bool>& bound,
                           const ExecContext& ctx, const PlanHints& hints) {
  const NeighborSource* src = SourceFor(ctx, p.graph);
  const bool s_known = TermBound(p.subject, bound);
  const bool o_known = TermBound(p.object, bound);

  if (s_known && o_known) {
    return 1.0;  // Existence check only prunes.
  }
  if (!p.subject.is_var()) {
    return static_cast<double>(
        src->EstimateCount(Key(p.subject.constant, p.predicate, Dir::kOut)));
  }
  if (!p.object.is_var()) {
    return static_cast<double>(
        src->EstimateCount(Key(p.object.constant, p.predicate, Dir::kIn)));
  }
  // Bound variable endpoint: expansion fans out by the average degree,
  // approximated by a small constant — far cheaper than an index scan. The
  // fan-out cannot exceed what the pattern's own source holds for this
  // predicate, which matters for window-scoped patterns: a sparse window
  // caps the expansion at its few edges, and with multiple windows each
  // pattern must rank by *its* window, not a shared constant.
  if (s_known || o_known) {
    if (hints.stats != nullptr) {
      // Adaptive re-planning (§5.14): an observed fan-out for this pattern's
      // scope beats any degree heuristic — it is the measured output-per-row
      // of exactly this expansion. Capped at the index-scan floor so a
      // pathological observation cannot rank an expansion above a scan.
      // Window graphs beyond window_scope have no stream attribution; their
      // expansion must not borrow the stored-scope observation.
      bool scoped = true;
      int32_t scope = kStoredScope;
      if (p.graph != kGraphStored) {
        if (static_cast<size_t>(p.graph) < hints.window_scope.size()) {
          scope = hints.window_scope[static_cast<size_t>(p.graph)];
        } else {
          scoped = false;
        }
      }
      const double observed =
          scoped ? hints.stats->FanoutOf(scope, p.predicate) : -1.0;
      if (observed >= 0.0) {
        return std::min(64.0, 1.0 + observed);
      }
    }
    const size_t seeds =
        src->EstimateCount(Key(kIndexVertex, p.predicate, Dir::kOut));
    const double row_est = std::min(16.0, 1.0 + static_cast<double>(seeds));
    if (hints.chunk_rows > 0) {
      // Columnar executor: the expansion is a per-chunk batched gather, so
      // what the estimate should count is chunk cardinality — how much of a
      // chunk the predicate's seed population fills — not raw rows. The
      // ratio keeps the ranking monotone in the seed count (two sparse
      // windows still order correctly) while de-weighting dense predicates
      // that the row estimate saturated to the same cap.
      const double chunk_est =
          std::min(16.0, 1.0 + static_cast<double>(seeds) /
                                   static_cast<double>(hints.chunk_rows));
      // Batching can only amortize work: a chunked gather over the same seed
      // population never costs more than the per-row walk. If the two
      // estimates disagree the hint carries a nonsensical chunk size (or one
      // formula was edited without the other) — trap loudly in debug builds
      // and reconcile to the tighter bound instead of diverging silently.
      assert(chunk_est <= row_est + 1e-9 &&
             "chunk-cardinality estimate exceeds the row estimate");
      return std::min(chunk_est, row_est);
    }
    return row_est;
  }
  // Both endpoints free: index-vertex scan over every pid edge.
  size_t n = src->EstimateCount(Key(kIndexVertex, p.predicate, Dir::kOut));
  return 64.0 * static_cast<double>(n == 0 ? 1 : n);
}

std::vector<int> PlanQuery(const Query& q, const ExecContext& ctx) {
  return PlanQuery(q, ctx, PlanHints{});
}

std::vector<int> PlanQuery(const Query& q, const ExecContext& ctx,
                           const PlanHints& hints) {
  const size_t n = q.patterns.size();
  std::vector<int> plan;
  plan.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<bool> bound(q.var_names.size(), false);

  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) {
        continue;
      }
      const TriplePattern& p = q.patterns[i];
      bool connected = TermBound(p.subject, bound) || TermBound(p.object, bound);
      double cost = EstimatePatternCost(p, bound, ctx, hints);
      if (hints.delta_cache && p.graph != kGraphStored) {
        // Cache-friendly bias: defer window patterns so the stored-graph
        // prefix (cached across triggers) absorbs as much of the join as
        // possible and per-slice contributions stay small.
        cost *= 64.0;
      }
      // Prefer connected patterns; disconnected ones would build a cartesian
      // product with the current table.
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected && cost < best_cost)) {
        best = static_cast<int>(i);
        best_cost = cost;
        best_connected = connected;
      }
    }
    assert(best >= 0);
    used[static_cast<size_t>(best)] = true;
    plan.push_back(best);
    const TriplePattern& p = q.patterns[static_cast<size_t>(best)];
    if (p.subject.is_var()) {
      bound[static_cast<size_t>(p.subject.var)] = true;
    }
    if (p.object.is_var()) {
      bound[static_cast<size_t>(p.object.var)] = true;
    }
  }
  return plan;
}

}  // namespace wukongs
