// Deterministic query-lifecycle tracer (DESIGN.md §5.8).
//
// Spans cover the query path (query/parse → query/plan → query/dispatch →
// query/execute → query/merge → query/deliver) and the ingest path
// (ingest/adaptor → ingest/dispatch → ingest/append_persistent /
// ingest/append_transient → ingest/index_publish), plus per-stage executor
// spans (exec/patterns, exec/filters, ...).
//
// Timestamps come from SimCost — the thread-local modeled-cost accumulator —
// NOT from the wall clock. SimCost is a deterministic function of the work
// performed, so the same ScheduleController seed replays to a byte-identical
// Chrome trace_event JSON; the golden-trace test (tests/obs_test.cc) enforces
// that, and test_hooks::reorder_trace_spans plants the mutation it must
// catch. Wall-clock timing stays where it belongs: in LatencyProbe and the
// bench tables.
//
// Events are Chrome trace_event "X" (complete) events, emitted when a span
// ends; `ts` is SimCost at span start (µs), `dur` the SimCost accrued inside
// the span, `tid` the simulated node, and `args.seq` a global emission
// sequence number that keeps ordering stable even when many spans share a
// timestamp (SimCost only advances on modeled remote operations). Load the
// JSON in chrome://tracing or Perfetto.
//
// A null Tracer* in ClusterConfig is the runtime kill switch; every wiring
// site guards on it, so the disabled cost is a not-taken branch.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wukongs::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_ns = 0.0;   // SimCost at begin.
  double dur_ns = 0.0;  // SimCost accrued inside the span; 0 for instants.
  uint32_t tid = 0;     // Simulated node id.
  char phase = 'X';     // 'X' complete, 'i' instant.
  uint64_t seq = 0;     // Emission order; assigned by the tracer.
  // Pre-rendered JSON literals: value is emitted verbatim (numbers) unless
  // quoted is set (strings, already escaped).
  struct Arg {
    std::string key;
    std::string value;
    bool quoted = false;
  };
  std::vector<Arg> args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // RAII span: captures SimCost on construction, emits an 'X' event on End()
  // or destruction. A default-constructed Span is inert, which is how wiring
  // sites handle the tracer-disabled case without branching at every stage.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, const char* cat, std::string name, uint32_t tid);
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { End(); }

    Span& Arg(const char* key, uint64_t value);
    Span& Arg(const char* key, int64_t value);
    Span& Arg(const char* key, double value);
    Span& Arg(const char* key, const std::string& value);

    void End();

   private:
    Tracer* tracer_ = nullptr;
    TraceEvent event_;
  };

  Span StartSpan(const char* cat, std::string name, uint32_t tid = 0) {
    return Span(this, cat, std::move(name), tid);
  }
  void Instant(const char* cat, std::string name, uint32_t tid = 0);

  void Clear();
  size_t size() const;
  std::string ToChromeJson() const;
  // CRC32 over ToChromeJson(); the golden-trace tests compare digests.
  uint32_t Digest() const;

 private:
  void Emit(TraceEvent event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace wukongs::obs

#endif  // SRC_OBS_TRACE_H_
