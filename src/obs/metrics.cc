#include "src/obs/metrics.h"

#include <cmath>
#include <sstream>

namespace wukongs::obs {

namespace {

// "name{labels}" -> base name without the label block.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Inserts a suffix before the label block: ("lat{q=\"L1\"}", "_count") ->
// "lat_count{q=\"L1\"}".
std::string WithSuffix(const std::string& name, const std::string& suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + suffix;
  }
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Adds one label to the (possibly empty) label block.
std::string WithLabel(const std::string& name, const std::string& key,
                      const std::string& value) {
  std::string label = key + "=\"" + value + "\"";
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "{" + label + "}";
  }
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

void EmitType(std::ostream& os, std::string* last_base, const std::string& name,
              const char* type) {
  std::string base = BaseName(name);
  if (base != *last_base) {
    os << "# TYPE " << base << " " << type << "\n";
    *last_base = base;
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string FormatMetricValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os << static_cast<int64_t>(v);
    return os.str();
  }
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>();
  }
  return slot.get();
}

std::string MetricsRegistry::Labeled(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) {
    return name;
  }
  std::string out = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += k + "=\"" + v + "\"";
  }
  out += "}";
  return out;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` under its lock, then fold in under ours; Get* takes our
  // lock internally, so the fold must not hold it.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, BucketHistogram>> hists;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g->value());
    }
    for (const auto& [name, h] : other.histograms_) {
      hists.emplace_back(name, h->Snapshot());
    }
  }
  for (const auto& [name, v] : counters) {
    GetCounter(name)->Add(v);
  }
  for (const auto& [name, v] : gauges) {
    Gauge* g = GetGauge(name);
    if (v > g->value()) {
      g->Set(v);
    }
  }
  for (const auto& [name, h] : hists) {
    GetHistogram(name)->MergeInto(h);
  }
}

std::string MetricsRegistry::TextDump(const std::string& name_filter) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  std::string last_base;
  auto keep = [&name_filter](const std::string& name) {
    return name_filter.empty() || name.find(name_filter) != std::string::npos;
  };
  for (const auto& [name, c] : counters_) {
    if (!keep(name)) {
      continue;
    }
    EmitType(os, &last_base, name, "counter");
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!keep(name)) {
      continue;
    }
    EmitType(os, &last_base, name, "gauge");
    os << name << " " << FormatMetricValue(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!keep(name)) {
      continue;
    }
    EmitType(os, &last_base, name, "summary");
    BucketHistogram snap = h->Snapshot();
    os << WithSuffix(name, "_count") << " " << snap.count() << "\n";
    os << WithSuffix(name, "_sum") << " " << FormatMetricValue(snap.Sum())
       << "\n";
    if (!snap.empty()) {
      for (double q : {50.0, 90.0, 99.0}) {
        os << WithLabel(name, "quantile", FormatMetricValue(q / 100.0)) << " "
           << FormatMetricValue(snap.Percentile(q)) << "\n";
      }
      os << WithSuffix(name, "_max") << " " << FormatMetricValue(snap.Max())
         << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name)
       << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name)
       << "\":" << FormatMetricValue(g->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    BucketHistogram snap = h->Snapshot();
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":{";
    os << "\"count\":" << snap.count();
    os << ",\"sum\":" << FormatMetricValue(snap.Sum());
    if (!snap.empty()) {
      os << ",\"mean\":" << FormatMetricValue(snap.Mean());
      os << ",\"p50\":" << FormatMetricValue(snap.Percentile(50));
      os << ",\"p90\":" << FormatMetricValue(snap.Percentile(90));
      os << ",\"p99\":" << FormatMetricValue(snap.Percentile(99));
      os << ",\"max\":" << FormatMetricValue(snap.Max());
    }
    os << ",\"overflow\":" << snap.overflow_count() << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace wukongs::obs
