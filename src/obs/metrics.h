// Unified metrics registry (DESIGN.md §5.8).
//
// Before this layer, every subsystem kept its own ad-hoc counters —
// OverloadStats atomics, FaultStats, FabricStats, the shed ledger — each with
// its own accessor and no common export. The registry gives them one home:
//
//   Counter    monotone uint64; merge = sum. Event counts (shed tuples,
//              retries, rejections, injected batches).
//   Gauge      last-written double; merge = max. Levels sampled at export
//              time (phi suspicion, VTS lag, pressure, memory bytes).
//   HistogramMetric
//              mergeable log-linear BucketHistogram; merge = bucket-count
//              addition (exact, associative, commutative). Distributions
//              (latency, batch sizes).
//
// Metric names follow Prometheus conventions: `wukongs_<noun>_total` for
// counters, labels inline in the name (`wukongs_vts_lag_batches{stream="S0"}`).
// TextDump() emits a deterministic Prometheus-style exposition (sorted by
// name); MergeFrom() folds one node's registry into a cluster-wide view.
//
// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
// registry's lifetime, so hot paths resolve them once at construction and pay
// one atomic add per event thereafter. A null registry pointer is the runtime
// kill switch: callers guard with `if (metrics_) ...` and the disabled cost is
// a predictable not-taken branch.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace wukongs::obs {

// Compile-time kill switch: building with -DWUKONGS_OBS_DISABLED turns the
// wiring sites into `if constexpr (false)` dead code the optimizer deletes.
#ifdef WUKONGS_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Overwrite, for counters mirrored from an external monotone source
  // (scraping FabricStats into the registry) rather than incremented in place.
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class HistogramMetric {
 public:
  void Observe(double v) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(v);
  }
  BucketHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void MergeInto(const BucketHistogram& other) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Merge(other);
  }

 private:
  mutable std::mutex mu_;
  BucketHistogram hist_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned pointers remain valid for the registry lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  // `name{k1="v1",k2="v2"}`; labels are emitted in the order given.
  static std::string Labeled(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels);

  // Cluster-wide merge: counters sum, gauges take the max (a merged gauge
  // reports the worst level across nodes), histograms merge exactly.
  void MergeFrom(const MetricsRegistry& other);

  // Deterministic Prometheus-style exposition, sorted by metric name. A
  // non-empty `name_filter` restricts output to names containing it (used for
  // per-node views over node-labeled metrics).
  std::string TextDump(const std::string& name_filter = "") const;

  // Deterministic JSON object {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,mean,p50,p90,p99,max,overflow}}} — the
  // payload bench artifacts embed.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

// Renders a double deterministically for dumps: integers print without a
// fractional part, everything else with up to 9 significant digits.
std::string FormatMetricValue(double v);

// Hot-path increment for a pre-resolved handle: dead code when the layer is
// compiled out, one predictable null check when no registry is attached.
// Found by ADL on the Counter* argument, so wiring sites call it unqualified.
inline void Bump(Counter* c, uint64_t n = 1) {
  if constexpr (kCompiledIn) {
    if (c != nullptr && n > 0) {
      c->Add(n);
    }
  } else {
    (void)c;
    (void)n;
  }
}

}  // namespace wukongs::obs

#endif  // SRC_OBS_METRICS_H_
