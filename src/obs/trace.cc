#include "src/obs/trace.h"

#include <sstream>
#include <utility>

#include "src/common/crc32.h"
#include "src/common/latency_model.h"
#include "src/common/test_hooks.h"
#include "src/obs/metrics.h"

namespace wukongs::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

Tracer::Span::Span(Tracer* tracer, const char* cat, std::string name,
                   uint32_t tid)
    : tracer_(tracer) {
  event_.name = std::move(name);
  event_.cat = cat;
  event_.tid = tid;
  event_.ts_ns = SimCost::TotalNs();
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = std::exchange(other.tracer_, nullptr);
    event_ = std::move(other.event_);
  }
  return *this;
}

Tracer::Span& Tracer::Span::Arg(const char* key, uint64_t value) {
  if (tracer_ != nullptr) {
    std::ostringstream os;
    os << value;
    event_.args.push_back({key, os.str(), /*quoted=*/false});
  }
  return *this;
}

Tracer::Span& Tracer::Span::Arg(const char* key, int64_t value) {
  if (tracer_ != nullptr) {
    std::ostringstream os;
    os << value;
    event_.args.push_back({key, os.str(), /*quoted=*/false});
  }
  return *this;
}

Tracer::Span& Tracer::Span::Arg(const char* key, double value) {
  if (tracer_ != nullptr) {
    event_.args.push_back({key, FormatMetricValue(value), /*quoted=*/false});
  }
  return *this;
}

Tracer::Span& Tracer::Span::Arg(const char* key, const std::string& value) {
  if (tracer_ != nullptr) {
    event_.args.push_back({key, JsonEscape(value), /*quoted=*/true});
  }
  return *this;
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) {
    return;
  }
  event_.dur_ns = SimCost::TotalNs() - event_.ts_ns;
  Tracer* t = std::exchange(tracer_, nullptr);
  t->Emit(std::move(event_));
}

void Tracer::Instant(const char* cat, std::string name, uint32_t tid) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.tid = tid;
  ev.phase = 'i';
  ev.ts_ns = SimCost::TotalNs();
  Emit(std::move(ev));
}

void Tracer::Emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
  // Planted mutation for the golden-trace test: swapping adjacent emissions
  // must change the digest, proving the determinism check has teeth.
  if (test_hooks::reorder_trace_spans.load(std::memory_order_relaxed) &&
      events_.size() >= 2) {
    std::swap(events_[events_.size() - 1], events_[events_.size() - 2]);
  }
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << JsonEscape(ev.name) << "\",\"cat\":\"" << ev.cat
       << "\",\"ph\":\"" << ev.phase << "\",\"pid\":0,\"tid\":" << ev.tid
       << ",\"ts\":" << FormatMetricValue(ev.ts_ns / 1000.0);
    if (ev.phase == 'X') {
      os << ",\"dur\":" << FormatMetricValue(ev.dur_ns / 1000.0);
    }
    if (ev.phase == 'i') {
      os << ",\"s\":\"t\"";
    }
    os << ",\"args\":{\"seq\":" << ev.seq;
    for (const TraceEvent::Arg& a : ev.args) {
      os << ",\"" << JsonEscape(a.key) << "\":";
      if (a.quoted) {
        os << "\"" << a.value << "\"";
      } else {
        os << a.value;
      }
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
  return os.str();
}

uint32_t Tracer::Digest() const {
  std::string json = ToChromeJson();
  return Crc32(json.data(), json.size());
}

}  // namespace wukongs::obs
