// Quickstart: the paper's running example (Figs. 1-2) end to end.
//
// Builds a 2-node Wukong+S cluster, loads the X-Lab social graph, registers
// the continuous query QC, feeds the Tweet/Like streams, and runs both the
// continuous query and the one-shot query QS — showing how timeless stream
// facts become visible to one-shot queries while timing data (GPS) stays in
// the transient store.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <iostream>

#include "src/cluster/cluster.h"

using namespace wukongs;

namespace {

void PrintResult(const Cluster& cluster, const QueryResult& result) {
  for (const std::string& col : result.columns) {
    std::cout << col << "\t";
  }
  std::cout << "\n";
  for (const auto& row : result.rows) {
    for (const ResultValue& v : row) {
      if (v.is_number) {
        std::cout << v.number << "\t";
      } else {
        std::cout << *cluster.strings().VertexString(v.vid) << "\t";
      }
    }
    std::cout << "\n";
  }
  if (result.rows.empty()) {
    std::cout << "(no results)\n";
  }
}

}  // namespace

int main() {
  // 1. A simulated 2-node cluster; 1s mini-batches for readability.
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = 1000;
  Cluster cluster(config);

  // 2. Declare the streams. GPS positions ("ga") are timing data: they live
  //    in the time-based transient store and are garbage-collected when the
  //    windows move past them.
  StreamId tweets = *cluster.DefineStream("Tweet_Stream", {"ga"});
  StreamId likes = *cluster.DefineStream("Like_Stream");

  // 3. Load the initially stored data (paper Fig. 1, X-Lab).
  StringServer* s = cluster.strings();
  auto triple = [&](const char* su, const char* p, const char* o) {
    return Triple{s->InternVertex(su), s->InternPredicate(p), s->InternVertex(o)};
  };
  cluster.LoadBase(std::vector<Triple>{
      triple("Logan", "fo", "Erik"), triple("Erik", "fo", "Logan"),
      triple("Logan", "po", "T-13"), triple("Logan", "po", "T-14"),
      triple("Erik", "po", "T-12"), triple("T-12", "ht", "#sosp17"),
      triple("T-13", "ht", "#sosp17"), triple("Erik", "li", "T-13"),
      triple("Logan", "li", "T-12")});

  // 4. Register the continuous query QC (paper Fig. 2b).
  auto qc = cluster.RegisterContinuous(R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      FROM STREAM <Like_Stream>  [RANGE 5s STEP 1s]
      FROM <X-Lab>
      WHERE {
        GRAPH <Tweet_Stream> { ?X po ?Z }
        GRAPH <X-Lab>        { ?X fo ?Y }
        GRAPH <Like_Stream>  { ?Y li ?Z }
      })");
  if (!qc.ok()) {
    std::cerr << "register failed: " << qc.status().ToString() << "\n";
    return 1;
  }

  // 5. Feed the streams (paper Fig. 1; "0802" -> t = 2000 ms).
  auto tuple = [&](const char* su, const char* p, const char* o, StreamTime ts) {
    return StreamTuple{{s->InternVertex(su), s->InternPredicate(p),
                        s->InternVertex(o)},
                       ts,
                       TupleKind::kTimeless};
  };
  (void)cluster.FeedStream(tweets, {tuple("Logan", "po", "T-15", 2000),
                                    tuple("T-15", "ga", "31,121", 2000),
                                    tuple("T-15", "ht", "#sosp17", 2000),
                                    tuple("Erik", "po", "T-16", 5000),
                                    tuple("T-16", "ga", "41,-74", 5000),
                                    tuple("Logan", "po", "T-17", 8000),
                                    tuple("T-17", "ga", "31,121", 8000)});
  (void)cluster.FeedStream(likes, {tuple("Erik", "li", "T-15", 6000),
                                   tuple("Tony", "li", "T-15", 6000),
                                   tuple("Bruce", "li", "T-15", 6000)});
  cluster.AdvanceStreams(10000);  // Logical clock reaches 0810.

  // 6. The first execution at 0810: "Logan Erik T-15" (paper §2.1).
  auto exec = cluster.ExecuteContinuousAt(*qc, 10000);
  std::cout << "=== QC at 0810 (latency " << exec->latency_ms() << " ms) ===\n";
  PrintResult(cluster, exec->result);

  // 7. One-shot query QS (paper Fig. 2a): the streamed tweet T-15 has been
  //    absorbed into the store, so the answer is now {T-13, T-15}.
  auto qs = cluster.OneShot(
      "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }");
  std::cout << "\n=== QS (one-shot, snapshot " << qs->snapshot << ", latency "
            << qs->latency_ms() << " ms) ===\n";
  PrintResult(cluster, qs->result);

  // 8. Timing data is not in the persistent store:
  auto gps = cluster.OneShot("SELECT ?G WHERE { T-15 ga ?G }");
  std::cout << "\n=== GPS via one-shot (expected empty: timing data) ===\n";
  PrintResult(cluster, gps->result);

  return 0;
}
