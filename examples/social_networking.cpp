// Social-networking scenario: a live dashboard over LSBench-style streams.
//
// Demonstrates the workload class the paper motivates in §2.1: many
// concurrent continuous queries (a user's live feed, a like-counter, a
// trending-hashtags aggregate) sharing the same streams and stored graph,
// interleaved with one-shot analytics over the continuously evolving store.
//
// Run: ./build/examples/example_social_networking

#include <iomanip>
#include <iostream>

#include "src/workloads/lsbench.h"

using namespace wukongs;

int main() {
  ClusterConfig config;
  config.nodes = 4;
  Cluster cluster(config);

  LsBenchConfig workload;
  workload.users = 1000;
  workload.rate_scale = 2.0;
  LsBench bench(&cluster, workload);
  if (!bench.Setup().ok()) {
    std::cerr << "workload setup failed\n";
    return 1;
  }
  std::cout << "social graph loaded: " << bench.initial_triples() << " triples, "
            << bench.total_rate_tuples_per_sec() << " stream tuples/s\n\n";

  // --- Register the dashboard's continuous queries. ---
  // (a) Live feed: fresh posts from people User500 follows.
  auto feed = cluster.RegisterContinuous(R"(
      REGISTER QUERY feed AS
      SELECT ?F ?P
      FROM STREAM <PO_Stream> [RANGE 2s STEP 1s]
      FROM <X-Lab>
      WHERE { GRAPH <X-Lab> { User500 fo ?F }
              GRAPH <PO_Stream> { ?F po ?P } })");
  // (b) Like counter per post over the last 2 seconds.
  auto likes = cluster.RegisterContinuous(R"(
      REGISTER QUERY likes AS
      SELECT ?P (COUNT(?U) AS ?n)
      FROM STREAM <POL_Stream> [RANGE 2s STEP 1s]
      WHERE { GRAPH <POL_Stream> { ?U li ?P } }
      GROUP BY ?P)");
  // (c) Trending hashtags: tags attached to fresh posts.
  auto trends = cluster.RegisterContinuous(R"(
      REGISTER QUERY trends AS
      SELECT ?T (COUNT(?P) AS ?n)
      FROM STREAM <PO_Stream> [RANGE 2s STEP 1s]
      WHERE { GRAPH <PO_Stream> { ?P ht ?T } }
      GROUP BY ?T)");
  if (!feed.ok() || !likes.ok() || !trends.ok()) {
    std::cerr << "registration failed\n";
    return 1;
  }

  // --- Stream for five seconds and render the dashboard each second. ---
  StringServer& s = *cluster.strings();
  for (StreamTime now = 1000; now <= 5000; now += 1000) {
    if (!bench.FeedInterval(now - 1000, now).ok()) {
      std::cerr << "feeding failed\n";
      return 1;
    }
    std::cout << "=== t = " << now / 1000 << "s ===\n";

    auto f = cluster.ExecuteContinuousAt(*feed, now);
    std::cout << "  live feed for User500: " << f->result.rows.size()
              << " fresh posts (" << std::fixed << std::setprecision(3)
              << f->latency_ms() << " ms)\n";

    auto l = cluster.ExecuteContinuousAt(*likes, now);
    double max_likes = 0;
    std::string hot_post = "-";
    for (const auto& row : l->result.rows) {
      if (row[1].number > max_likes) {
        max_likes = row[1].number;
        hot_post = *s.VertexString(row[0].vid);
      }
    }
    std::cout << "  hottest post: " << hot_post << " (" << max_likes
              << " likes in window; " << l->result.rows.size()
              << " posts liked)\n";

    auto t = cluster.ExecuteContinuousAt(*trends, now);
    double max_tag = 0;
    std::string top_tag = "-";
    for (const auto& row : t->result.rows) {
      if (row[1].number > max_tag) {
        max_tag = row[1].number;
        top_tag = *s.VertexString(row[0].vid);
      }
    }
    std::cout << "  trending tag: " << top_tag << " (" << max_tag
              << " fresh posts)\n";
  }

  // --- One-shot analytics over the evolved store. ---
  auto posts = cluster.OneShot("SELECT COUNT(?P) WHERE { ?U po ?P }");
  std::cout << "\nall posts ever (stored + absorbed from streams): "
            << posts->result.rows[0][0].number << " at snapshot "
            << posts->snapshot << "\n";

  // Housekeeping: snapshots collapse, expired windows are GC'd.
  cluster.RunMaintenance(/*live_horizon_ms=*/3000);
  auto mem = cluster.Memory();
  std::cout << "memory after maintenance: store "
            << mem.store_bytes / 1024 / 1024 << " MB, stream index "
            << mem.stream_index_bytes / 1024 << " KB, transient "
            << mem.transient_bytes / 1024 << " KB\n";
  return 0;
}
