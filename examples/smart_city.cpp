// Smart-city scenario: CityBench-style IoT monitoring (paper §6.10).
//
// Sensor observations (traffic congestion, parking vacancies, pollution) are
// *timing* data: they matter only within windows and are swept by GC, while
// the road/sensor metadata graph is stored. The example registers alerting
// queries with FILTERs and an aggregate, then drives a few window steps.
//
// Run: ./build/examples/example_smart_city

#include <iomanip>
#include <iostream>

#include "src/workloads/citybench.h"

using namespace wukongs;

int main() {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);

  CityBenchConfig city;
  city.rate_scale = 4.0;
  CityBench bench(&cluster, city);
  if (!bench.Setup().ok()) {
    std::cerr << "city setup failed\n";
    return 1;
  }
  std::cout << "city metadata loaded: " << bench.initial_triples()
            << " triples (roads, sensors, parking lots, stations)\n\n";

  // Congestion alert: sensors reporting > 70 on any road, joined with the
  // stored road graph to name the road.
  auto congestion = cluster.RegisterContinuous(R"(
      REGISTER QUERY congestion_alert AS
      SELECT ?R ?C
      FROM STREAM <VT1> [RANGE 3s STEP 1s]
      FROM <City>
      WHERE { GRAPH <VT1> { ?S congestion ?C }
              GRAPH <City> { ?S onRoad ?R }
              FILTER (?C > 70) })");

  // Parking guidance: lots with plenty of space on uncongested roads.
  auto parking = cluster.RegisterContinuous(R"(
      REGISTER QUERY parking AS
      SELECT ?L ?V ?C
      FROM STREAM <PK1> [RANGE 3s STEP 1s]
      FROM STREAM <VT1> [RANGE 3s STEP 1s]
      FROM <City>
      WHERE { GRAPH <PK1> { ?L vacancies ?V }
              GRAPH <City> { ?L locatedOn ?R . ?S onRoad ?R }
              GRAPH <VT1> { ?S congestion ?C }
              FILTER (?V > 200)
              FILTER (?C < 40) })");

  // City-wide average congestion per road (online aggregation).
  auto avg = cluster.RegisterContinuous(R"(
      REGISTER QUERY avg_congestion AS
      SELECT ?R (AVG(?C) AS ?avg)
      FROM STREAM <VT2> [RANGE 3s STEP 1s]
      FROM <City>
      WHERE { GRAPH <VT2> { ?S congestion ?C }
              GRAPH <City> { ?S onRoad ?R } }
      GROUP BY ?R)");

  if (!congestion.ok() || !parking.ok() || !avg.ok()) {
    std::cerr << "registration failed\n";
    return 1;
  }

  StringServer& s = *cluster.strings();
  for (StreamTime now = 3000; now <= 6000; now += 1000) {
    if (!bench.FeedInterval(now == 3000 ? 0 : now - 1000, now).ok()) {
      std::cerr << "feeding failed\n";
      return 1;
    }
    std::cout << "=== t = " << now / 1000 << "s ===\n";

    auto c = cluster.ExecuteContinuousAt(*congestion, now);
    std::cout << "  congestion alerts (>70): " << c->result.rows.size();
    if (!c->result.rows.empty()) {
      std::cout << " — e.g. " << *s.VertexString(c->result.rows[0][0].vid)
                << " at level " << *s.VertexString(c->result.rows[0][1].vid);
    }
    std::cout << " [" << std::fixed << std::setprecision(3) << c->latency_ms()
              << " ms]\n";

    auto p = cluster.ExecuteContinuousAt(*parking, now);
    std::cout << "  parking suggestions: " << p->result.rows.size() << " ["
              << p->latency_ms() << " ms]\n";

    auto a = cluster.ExecuteContinuousAt(*avg, now);
    double worst = -1;
    std::string worst_road = "-";
    for (const auto& row : a->result.rows) {
      if (row[1].number > worst) {
        worst = row[1].number;
        worst_road = *s.VertexString(row[0].vid);
      }
    }
    std::cout << "  worst average congestion: " << worst_road << " ("
              << std::setprecision(1) << worst << ")\n";
  }

  // Observations are timing data: the persistent store holds only metadata.
  auto check = cluster.OneShot("SELECT ?S ?C WHERE { ?S congestion ?C }");
  std::cout << "\ncongestion readings visible to one-shot queries: "
            << check->result.rows.size() << " (expected 0 — timing data)\n";
  return 0;
}
