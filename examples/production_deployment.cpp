// Production-deployment walkthrough: the pieces around the engine.
//
//   * Proxy + client library: queries parse once into stored procedures,
//     requests balance across nodes (paper Fig. 5);
//   * WorkerPool: per-core task queues serving concurrent requests;
//   * MaintenanceDaemon: the background GC thread sweeping expired windows
//     and collapsing snapshots;
//   * DISTINCT / ORDER BY / LIMIT solution modifiers;
//   * time-scoped one-shot queries (`[FROM .. TO ..]`): querying stream
//     history through the stream index, no window registration needed.
//
// Run: ./build/examples/example_production_deployment

#include <atomic>
#include <iomanip>
#include <iostream>

#include "src/cluster/client.h"
#include "src/cluster/maintenance_daemon.h"
#include "src/cluster/worker_pool.h"
#include "src/workloads/lsbench.h"

using namespace wukongs;

int main() {
  ClusterConfig config;
  config.nodes = 4;
  Cluster cluster(config);

  LsBenchConfig workload;
  workload.users = 1000;
  LsBench bench(&cluster, workload);
  if (!bench.Setup().ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  // Background GC: windows older than (now - 2s) are dead weight.
  std::atomic<StreamTime> now{0};
  MaintenanceDaemon daemon(
      &cluster,
      [&]() -> StreamTime {
        StreamTime t = now.load();
        return t > 2000 ? t - 2000 : 0;
      },
      std::chrono::milliseconds(20));

  // A proxy hands out clients, balanced across the 4 nodes.
  Proxy proxy(&cluster);
  Client analyst = proxy.NewClient();
  Client dashboard = proxy.NewClient();
  std::cout << "clients homed on nodes " << analyst.home() << " and "
            << dashboard.home() << "\n";

  // The dashboard registers its continuous query (a stored procedure).
  auto feed = dashboard.Register(R"(
      REGISTER QUERY top_posters AS
      SELECT ?U (COUNT(?P) AS ?n)
      FROM STREAM <PO_Stream> [RANGE 2s STEP 1s]
      WHERE { GRAPH <PO_Stream> { ?U po ?P } }
      GROUP BY ?U)");
  if (!feed.ok()) {
    std::cerr << feed.status().ToString() << "\n";
    return 1;
  }

  // Stream five seconds of social activity.
  for (StreamTime t = 1000; t <= 5000; t += 1000) {
    if (!bench.FeedInterval(t - 1000, t).ok()) {
      return 1;
    }
    now.store(t);
  }

  // Serve a burst of concurrent requests through the worker pool.
  WorkerPool pool(&cluster, 4);
  std::vector<std::future<StatusOr<QueryExecution>>> polls;
  for (int i = 0; i < 8; ++i) {
    polls.push_back(pool.SubmitContinuous(*feed, 5000));
  }
  size_t rows = 0;
  for (auto& f : polls) {
    auto exec = f.get();
    if (!exec.ok()) {
      std::cerr << exec.status().ToString() << "\n";
      return 1;
    }
    rows = exec->result.rows.size();
  }
  std::cout << "dashboard window at t=5s: " << rows
            << " active posters (served 8 concurrent polls, pool executed "
            << pool.executed() << " tasks)\n";

  // The analyst asks one-shot questions — with solution modifiers...
  auto top = analyst.Submit(R"(
      SELECT ?U (COUNT(?P) AS ?n)
      WHERE { ?U po ?P }
      GROUP BY ?U ORDER BY ?U LIMIT 3)");
  if (!top.ok()) {
    std::cerr << top.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nall-time posts per user (first 3 by name):\n";
  for (const auto& row : analyst.Render(top->result)) {
    std::cout << "  " << row[0] << ": " << std::stoi(row[1]) << " posts\n";
  }

  // ...and time-travel questions over stream history, through the stream
  // index (which the daemon has not yet swept for this range).
  auto history = analyst.Submit(R"(
      SELECT DISTINCT ?U
      FROM STREAM <PO_Stream> [FROM 3s TO 5s]
      WHERE { GRAPH <PO_Stream> { ?U po ?P } })");
  if (!history.ok()) {
    std::cerr << history.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\ndistinct users who posted between t=3s and t=5s: "
            << history->result.rows.size() << " (latency " << std::fixed
            << std::setprecision(3) << history->latency_ms() << " ms)\n";

  daemon.RunOnce();  // One synchronous pass before reporting.
  std::cout << "\nclient stats: analyst ran " << analyst.stats().one_shot_queries
            << " one-shot queries; GC daemon completed " << daemon.passes()
            << " passes in the background\n";
  return 0;
}
