// Fault-tolerance walkthrough (paper §5): incremental checkpointing, crash,
// recovery, and resumed streaming with at-least-once semantics.
//
// Run: ./build/examples/example_fault_tolerance

#include <filesystem>
#include <iostream>

#include "src/cluster/cluster.h"
#include "src/stream/checkpoint.h"

using namespace wukongs;

namespace {

// The deployment both the live and the recovered cluster share.
struct Deployment {
  ClusterConfig config;
  TripleVec base;
  std::string query = R"(
      REGISTER QUERY fresh_posts AS
      SELECT ?U ?P
      FROM STREAM <Post_Stream> [RANGE 2s STEP 1s]
      WHERE { GRAPH <Post_Stream> { ?U po ?P } })";
};

std::unique_ptr<Cluster> BuildCluster(const Deployment& d, StringServer* strings) {
  auto cluster = std::make_unique<Cluster>(d.config, strings);
  (void)cluster->DefineStream("Post_Stream", {"ga"});
  cluster->LoadBase(d.base);
  return cluster;
}

}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "wukongs_ft_example";
  std::filesystem::create_directories(dir);
  std::string batch_log = (dir / "batches.log").string();
  std::string registry = (dir / "queries.bin").string();

  Deployment d;
  d.config.nodes = 2;
  d.config.batch_interval_ms = 500;

  StringServer strings;
  // Base data: a few users.
  for (int i = 0; i < 8; ++i) {
    d.base.push_back({strings.InternVertex("user" + std::to_string(i)),
                      strings.InternPredicate("ty"),
                      strings.InternVertex("UserType")});
  }

  size_t results_before_crash = 0;
  {
    // --- Live phase: log every injected batch + the query registry. ---
    auto cluster = BuildCluster(d, &strings);
    auto log = CheckpointLog::Create(batch_log);
    if (!log.ok()) {
      std::cerr << log.status().ToString() << "\n";
      return 1;
    }
    cluster->SetBatchLogger([&](const StreamBatch& b) {
      if (!log->Append(b).ok()) {
        std::abort();
      }
    });

    auto handle = cluster->RegisterContinuous(d.query);
    (void)WriteQueryRegistry(registry, {{d.query, /*home=*/0}});

    StreamTupleVec tuples;
    for (int i = 0; i < 20; ++i) {
      tuples.push_back(StreamTuple{{strings.InternVertex("user" + std::to_string(i % 8)),
                                    strings.InternPredicate("po"),
                                    strings.InternVertex("post" + std::to_string(i))},
                                   static_cast<StreamTime>(i * 100),
                                   TupleKind::kTimeless});
    }
    (void)cluster->FeedStream(*cluster->FindStream("Post_Stream"), tuples);
    cluster->AdvanceStreams(2000);

    auto exec = cluster->ExecuteContinuousAt(*handle, 2000);
    results_before_crash = exec->result.rows.size();
    std::cout << "live cluster: query sees " << results_before_crash
              << " fresh posts in the window ending at t=2s\n";
    std::cout << "batches logged: " << log->appended_batches() << "\n";
    // Simulated crash: the cluster object is destroyed here; only the two
    // files survive.
  }
  std::cout << "\n*** crash ***\n\n";

  // --- Recovery: reload initial data, replay the log, re-register. ---
  auto recovered = BuildCluster(d, &strings);
  auto batches = ReadCheckpointLog(batch_log);
  if (!batches.ok()) {
    std::cerr << batches.status().ToString() << "\n";
    return 1;
  }
  for (const StreamBatch& b : *batches) {
    if (!recovered->ReplayBatch(b).ok()) {
      std::cerr << "replay failed\n";
      return 1;
    }
  }
  auto reg = ReadQueryRegistry(registry);
  Cluster::ContinuousHandle handle = 0;
  for (const RegisteredQueryRecord& rec : *reg) {
    auto h = recovered->RegisterContinuous(rec.text, rec.home);
    if (!h.ok()) {
      std::cerr << h.status().ToString() << "\n";
      return 1;
    }
    handle = *h;
  }
  std::cout << "recovered: replayed " << batches->size()
            << " batches, re-registered " << reg->size() << " query\n";

  // The recovered query re-executes the same window: at-least-once delivery
  // (clients dedupe by window end time, as the paper notes).
  auto exec = recovered->ExecuteContinuousAt(handle, 2000);
  std::cout << "recovered cluster: query sees " << exec->result.rows.size()
            << " fresh posts (matches pre-crash: "
            << (exec->result.rows.size() == results_before_crash ? "yes" : "NO")
            << ")\n";

  // Streaming resumes where the log left off.
  StreamTupleVec more;
  more.push_back(StreamTuple{{strings.InternVertex("user0"),
                              strings.InternPredicate("po"),
                              strings.InternVertex("post-after-crash")},
                             2200,
                             TupleKind::kTimeless});
  (void)recovered->FeedStream(*recovered->FindStream("Post_Stream"), more);
  recovered->AdvanceStreams(3000);
  auto exec2 = recovered->ExecuteContinuousAt(handle, 3000);
  std::cout << "after resuming the stream, window at t=3s sees "
            << exec2->result.rows.size() << " posts\n";

  std::filesystem::remove_all(dir);
  return 0;
}
