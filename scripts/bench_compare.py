#!/usr/bin/env python3
"""Bench-regression gate: compare bench JSON artifacts against a baseline.

Usage:
    bench_compare.py --baseline BENCH_baseline.json current1.json [current2.json ...]

The baseline file maps bench names to artifacts:
    {"benches": {"table2_latency_single": {"bench": ..., "metrics": ...}, ...}}
Each current file is one artifact as written by a bench's `--json` flag:
    {"bench": "<name>", "metrics": {"counters": ..., "gauges": ..., "histograms": ...}}

For every latency histogram present in both baseline and current, the gate
fails when the current p50 exceeds the baseline p50 by more than --threshold
(relative) AND by more than --abs-floor-ms (absolute). The absolute floor
exists because sub-0.1ms rows are dominated by measured CPU wall time, which
varies across machines far more than the modeled network time that dominates
the slower rows; a pure percentage gate on microsecond medians would flap.

Exit status: 0 when every compared metric passes, 1 on any regression (or
when nothing could be compared at all — a silent empty gate is a broken gate).
"""

import argparse
import json
import sys


def metric_family(name: str) -> str:
    """bench_latency_ms{mode="delta",query="L2"} -> bench_latency_ms"""
    return name.split("{", 1)[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_baseline.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative p50 regression allowed (default 0.15)")
    parser.add_argument("--abs-floor-ms", type=float, default=0.05,
                        help="ignore regressions smaller than this many ms")
    parser.add_argument("current", nargs="+",
                        help="bench artifacts to check")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        benches = json.load(f).get("benches")
    if not isinstance(benches, dict):
        print(f"warning: baseline {args.baseline} has no 'benches' map; "
              "nothing to compare against", file=sys.stderr)
        benches = {}

    compared = 0
    failures = []
    for path in args.current:
        with open(path, encoding="utf-8") as f:
            artifact = json.load(f)
        name = artifact.get("bench", "?")
        if name not in benches:
            print(f"note: no baseline entry for bench '{name}' ({path}), skipped")
            continue
        # A baseline entry or artifact missing its metrics/histograms section
        # (e.g. a bench recorded before it grew latency rows, or a truncated
        # upload) is a skip with a warning, not a traceback; the compared==0
        # guard below still fails the gate if nothing at all overlaps.
        base_hist = benches[name].get("metrics", {}).get("histograms")
        cur_hist = artifact.get("metrics", {}).get("histograms")
        if not isinstance(base_hist, dict) or not isinstance(cur_hist, dict):
            missing = "baseline" if not isinstance(base_hist, dict) else "current"
            print(f"warning: bench '{name}' ({path}) has no histograms in the "
                  f"{missing} artifact, skipped", file=sys.stderr)
            continue
        for metric, cur in sorted(cur_hist.items()):
            if "latency" not in metric_family(metric):
                continue
            base = base_hist.get(metric)
            if base is None or "p50" not in base or "p50" not in cur:
                continue
            compared += 1
            b50, c50 = base["p50"], cur["p50"]
            regressed = (c50 > b50 * (1.0 + args.threshold)
                         and c50 - b50 > args.abs_floor_ms)
            status = "FAIL" if regressed else "ok"
            print(f"[{status}] {name} :: {metric}: p50 {b50:.4f} -> {c50:.4f} ms"
                  f" ({(c50 / b50 - 1.0) * 100.0 if b50 else 0.0:+.1f}%)")
            if regressed:
                failures.append(f"{name} :: {metric}")

    if compared == 0:
        print("error: no latency metrics were compared — baseline and current "
              "artifacts do not overlap", file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} p50 regression(s) beyond "
              f"{args.threshold:.0%} + {args.abs_floor_ms}ms:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {compared} latency p50s within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
